/**
 * @file
 * Clustering microbench: the triangle-inequality-accelerated k-means
 * (SPLAB_KMEANS_ACCEL, Hamerly-style bounds in the Lloyd iterations
 * plus half-distance pruning in the fixed-centroid scans) against the
 * brute-force nearest-centroid path, on the paper-default BIC k-sweep
 * over real per-benchmark BBV profiles.
 *
 * Always runs in check mode: every comparison byte-compares the
 * serialized SimPointResult (assignments, centroid doubles, sweep
 * diagnostics) of both paths and the bench exits nonzero on any
 * mismatch — the acceleration contract is exact equality, not
 * approximation.  Wall times and the pruned-distance fraction go to
 * the paper-style tables, "<binary>.csv" and a "BENCH_kmeans.json"
 * baseline for perf tracking.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "core/runs.hh"
#include "obs/counters.hh"
#include "pin/engine.hh"
#include "pin/tools/bbv_tool.hh"
#include "simpoint/simpoint.hh"
#include "support/env.hh"
#include "support/rng.hh"
#include "support/serialize.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Deltas of the kmeans.* distance-kernel counters across @p fn. */
struct KernelWork
{
    u64 computed = 0;
    u64 pruned = 0;
    u64 fallbacks = 0;

    void
    merge(const KernelWork &o)
    {
        computed += o.computed;
        pruned += o.pruned;
        fallbacks += o.fallbacks;
    }
};

KernelWork
kernelWork(const std::function<void()> &fn)
{
    obs::Counter &c = obs::counter("kmeans.distances_computed");
    obs::Counter &p = obs::counter("kmeans.distances_pruned");
    obs::Counter &f = obs::counter("kmeans.bound_fallbacks");
    u64 c0 = c.value(), p0 = p.value(), f0 = f.value();
    fn();
    return {c.value() - c0, p.value() - p0, f.value() - f0};
}

/** BBV profile of one benchmark (no address generation). */
std::vector<FrequencyVector>
profileBbvs(const BenchmarkSpec &spec, ICount sliceInstrs)
{
    SyntheticWorkload wl(spec);
    BbvTool bbv(sliceInstrs);
    Engine e;
    e.attach(&bbv);
    e.runWhole(wl);
    return bbv.vectors();
}

std::vector<u8>
simpointBytes(const SimPointResult &r)
{
    ByteWriter w;
    serializeSimPoints(w, r);
    return w.bytes();
}

} // namespace
} // namespace splab

int
main(int, char **argv)
{
    using namespace splab;

    // A reduced scale keeps the brute-force leg tolerable; override
    // to measure at full size.
    setenv("SPLAB_SCALE", "0.1", 0);
    const ExperimentConfig cfg = ExperimentConfig::paperDefaults();
    const auto benches = suiteNames();
    const char *accelOld = std::getenv("SPLAB_KMEANS_ACCEL");
    bool identical = true;

    bench::banner("k-means: triangle-inequality pruning",
                  "BIC k-sweep (k = 1.." +
                      std::to_string(cfg.simpoint.maxK) +
                      ") vs brute-force nearest-centroid scans");

    CsvWriter csv;
    csv.header({"section", "bench", "slices", "brute_sec",
                "accel_sec", "speedup", "pruned_frac", "identical"});

    // ---- Part 1: full SimPoint selection, both paths ----
    // The paper's whole methodology per benchmark: sub-sampled BIC
    // k-sweep, restarts, merge pass, whole-run slice assignment.
    double bruteSec = 0.0, accelSec = 0.0;
    KernelWork bruteWork, accelWork;
    u64 totalSlices = 0;
    for (const std::string &name : benches) {
        BenchmarkSpec spec = benchmarkByName(name);
        auto bbvs = profileBbvs(spec, cfg.simpoint.sliceInstrs);
        totalSlices += bbvs.size();

        SimPointResult brute, accel;
        setenv("SPLAB_KMEANS_ACCEL", "0", 1);
        KernelWork bw;
        double bs = wallSeconds([&] {
            bw = kernelWork(
                [&] { brute = pickSimPoints(bbvs, cfg.simpoint); });
        });
        setenv("SPLAB_KMEANS_ACCEL", "1", 1);
        KernelWork aw;
        double as = wallSeconds([&] {
            aw = kernelWork(
                [&] { accel = pickSimPoints(bbvs, cfg.simpoint); });
        });

        bool same = simpointBytes(brute) == simpointBytes(accel);
        if (!same)
            std::printf("[FAIL] accel selection != brute on %s\n",
                        name.c_str());
        identical = identical && same;
        bruteSec += bs;
        accelSec += as;
        bruteWork.merge(bw);
        accelWork.merge(aw);
        double frac =
            aw.computed + aw.pruned > 0
                ? static_cast<double>(aw.pruned) /
                      static_cast<double>(aw.computed + aw.pruned)
                : 0.0;
        csv.row({"sweep", name, std::to_string(bbvs.size()),
                 fmt(bs, 4), fmt(as, 4),
                 fmt(as > 0.0 ? bs / as : 0.0, 3), fmt(frac, 4),
                 same ? "1" : "0"});
    }
    double sweepSpeedup = accelSec > 0.0 ? bruteSec / accelSec : 0.0;
    double prunedFrac =
        accelWork.computed + accelWork.pruned > 0
            ? static_cast<double>(accelWork.pruned) /
                  static_cast<double>(accelWork.computed +
                                      accelWork.pruned)
            : 0.0;

    TableWriter sweepTable(
        "SimPoint selection, " + std::to_string(benches.size()) +
        " benchmarks (BIC k-sweep, maxK = " +
        std::to_string(cfg.simpoint.maxK) + ", " +
        std::to_string(totalSlices) + " slices)");
    sweepTable.header({"scan", "wall (s)", "distances", "pruned",
                       "speedup", "identical"});
    sweepTable.row({"brute force", fmt(bruteSec, 3),
                    fmtCount(bruteWork.computed), "-", fmtX(1.0, 2),
                    "-"});
    sweepTable.row({"tri-inequality", fmt(accelSec, 3),
                    fmtCount(accelWork.computed),
                    fmtPct(prunedFrac), fmtX(sweepSpeedup, 2),
                    identical ? "yes" : "NO"});
    sweepTable.print();

    // ---- Part 2: fixed-centroid whole-run assignment ----
    // The finalize-pass kernel in isolation: assign every projected
    // slice of every benchmark to its nearest of maxK centroids,
    // with and without the half-distance table.
    double assignBruteSec = 0.0, assignAccelSec = 0.0;
    bool assignSame = true;
    const int assignReps = 5;
    for (const std::string &name : benches) {
        BenchmarkSpec spec = benchmarkByName(name);
        auto bbvs = profileBbvs(spec, cfg.simpoint.sliceInstrs);
        RandomProjection proj(
            cfg.simpoint.projectionDim,
            hashCombine(cfg.simpoint.seed, 0x9e37ULL));
        DenseMatrix pts = proj.projectAllNormalized(bbvs);
        setenv("SPLAB_KMEANS_ACCEL", "1", 1);
        KMeansResult fit = kmeansFit(
            pts, cfg.simpoint.maxK, cfg.simpoint.seed,
            cfg.simpoint.maxIters);

        std::vector<u32> bruteAssign(pts.rows()),
            accelAssign(pts.rows());
        std::vector<double> bruteD2(pts.rows()),
            accelD2(pts.rows());
        DistanceKernelStats st;
        NearestCentroids bruteScan(fit.centroids, false);
        NearestCentroids accelScan(fit.centroids, true, &st);
        double bs = wallSeconds([&] {
            for (int r = 0; r < assignReps; ++r)
                for (std::size_t i = 0; i < pts.rows(); ++i)
                    bruteAssign[i] = bruteScan.nearest(
                        pts.row(i), bruteD2[i], st);
        });
        double as = wallSeconds([&] {
            for (int r = 0; r < assignReps; ++r)
                for (std::size_t i = 0; i < pts.rows(); ++i)
                    accelAssign[i] = accelScan.nearest(
                        pts.row(i), accelD2[i], st);
        });
        bool same =
            bruteAssign == accelAssign && bruteD2 == accelD2;
        if (!same)
            std::printf("[FAIL] pruned assignment != brute on %s\n",
                        name.c_str());
        assignSame = assignSame && same;
        assignBruteSec += bs;
        assignAccelSec += as;
        csv.row({"assign", name, std::to_string(pts.rows()),
                 fmt(bs, 4), fmt(as, 4),
                 fmt(as > 0.0 ? bs / as : 0.0, 3), "",
                 same ? "1" : "0"});
    }
    identical = identical && assignSame;
    double assignSpeedup =
        assignAccelSec > 0.0 ? assignBruteSec / assignAccelSec : 0.0;

    TableWriter assignTable(
        "Whole-run slice assignment, " +
        std::to_string(benches.size()) + " benchmarks (k = " +
        std::to_string(cfg.simpoint.maxK) + ", x" +
        std::to_string(assignReps) + " reps)");
    assignTable.header({"scan", "wall (s)", "speedup", "identical"});
    assignTable.row({"brute force", fmt(assignBruteSec, 3),
                     fmtX(1.0, 2), "-"});
    assignTable.row({"tri-inequality", fmt(assignAccelSec, 3),
                     fmtX(assignSpeedup, 2),
                     assignSame ? "yes" : "NO"});
    assignTable.print();

    if (accelOld)
        setenv("SPLAB_KMEANS_ACCEL", accelOld, 1);
    else
        unsetenv("SPLAB_KMEANS_ACCEL");

    bench::saveCsv(csv, argv[0]);

    // Default into the CWD (the build tree under ctest); set
    // SPLAB_BENCH_OUT to publish straight to the repo root so the
    // committed baseline tracks the perf trajectory.
    const std::string jsonPath =
        envString("SPLAB_BENCH_OUT", "BENCH_kmeans.json");
    if (std::FILE *f = std::fopen(jsonPath.c_str(), "w")) {
        std::fprintf(
            f,
            "{\"bench\":\"micro_kmeans\",\"benchmarks\":%zu,"
            "\"max_k\":%u,\"slices\":%llu,"
            "\"sweep_brute_sec\":%.4f,\"sweep_accel_sec\":%.4f,"
            "\"sweep_speedup\":%.3f,"
            "\"brute_distances\":%llu,\"accel_distances\":%llu,"
            "\"accel_pruned\":%llu,\"accel_fallbacks\":%llu,"
            "\"pruned_fraction\":%.4f,"
            "\"assign_brute_sec\":%.4f,\"assign_accel_sec\":%.4f,"
            "\"assign_speedup\":%.3f,\"identical\":%s}\n",
            benches.size(), cfg.simpoint.maxK,
            static_cast<unsigned long long>(totalSlices), bruteSec,
            accelSec, sweepSpeedup,
            static_cast<unsigned long long>(bruteWork.computed),
            static_cast<unsigned long long>(accelWork.computed),
            static_cast<unsigned long long>(accelWork.pruned),
            static_cast<unsigned long long>(accelWork.fallbacks),
            prunedFrac, assignBruteSec, assignAccelSec,
            assignSpeedup, identical ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    if (!identical) {
        std::printf("[FAIL] accelerated clustering differs from the "
                    "brute-force path\n");
        return 1;
    }
    return 0;
}
