/**
 * @file
 * Ablation of the SimPoint design choices DESIGN.md calls out:
 * random-projection dimensionality, BIC score fraction and the
 * overlap-merge threshold.  For each configuration we report the
 * suite-average number of simulation points, the 90th-percentile
 * count and the resulting instruction-mix error — quantifying how
 * much each mechanism contributes to the paper's operating point.
 *
 * (Not a paper figure; a design ablation of this reproduction.)
 */

#include "bench_util.hh"

using namespace splab;

namespace
{

struct AblationRow
{
    std::string label;
    double avgPoints = 0;
    double avgPoints90 = 0;
    double avgMixErr = 0;
};

AblationRow
evaluate(const std::string &label, const SimPointConfig &cfg,
         ArtifactGraph &baseline)
{
    PinPointsPipeline pipe(cfg, baseline.cacheHandle());
    AblationRow row;
    row.label = label;
    double n = 0;
    // A representative spread of the suite keeps the ablation cheap.
    for (const char *name :
         {"505.mcf_r", "623.xalancbmk_s", "620.omnetpp_s",
          "503.bwaves_r", "511.povray_r", "519.lbm_r",
          "631.deepsjeng_s", "549.fotonik3d_r"}) {
        const BenchmarkSpec &spec = baseline.spec(name);
        SimPointResult r = pipe.simpoints(spec);
        row.avgPoints += static_cast<double>(r.points.size());
        row.avgPoints90 +=
            static_cast<double>(r.topByWeight(0.9).size());

        auto whole = wholeAsAggregate(baseline.wholeCache(name));
        auto agg = aggregateCache(measurePointsCache(
            spec, r, baseline.config().allcache, 0));
        double mixErr = 0;
        for (int c = 0; c < 4; ++c)
            mixErr = std::max(mixErr,
                              std::fabs(agg.mixFrac[c] -
                                        whole.mixFrac[c]));
        row.avgMixErr += mixErr;
        n += 1;
    }
    row.avgPoints /= n;
    row.avgPoints90 /= n;
    row.avgMixErr /= n;
    return row;
}

} // namespace

int
main(int, char **argv)
{
    bench::banner("SimPoint design-choice ablation",
                  "DESIGN.md section 5 (not a paper figure)");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite({"505.mcf_r", "623.xalancbmk_s", "620.omnetpp_s",
                    "503.bwaves_r", "511.povray_r", "519.lbm_r",
                    "631.deepsjeng_s", "549.fotonik3d_r"},
                   {ArtifactKind::WholeCache});
    TableWriter t("Ablation - 8-benchmark averages per config");
    t.header({"Config", "Points", "Points@90%", "Mix err"});
    CsvWriter csv;
    csv.header({"config", "avg_points", "avg_points90",
                "avg_mix_err"});

    std::vector<std::pair<std::string, SimPointConfig>> configs;
    {
        SimPointConfig base;
        configs.push_back({"baseline (dim15, bic0.9, merge0.6)",
                           base});
        SimPointConfig c = base;
        c.projectionDim = 5;
        configs.push_back({"projection dim 5", c});
        c = base;
        c.projectionDim = 30;
        configs.push_back({"projection dim 30", c});
        c = base;
        c.bicFraction = 0.7;
        configs.push_back({"BIC fraction 0.7", c});
        c = base;
        c.bicFraction = 1.0;
        configs.push_back({"BIC fraction 1.0 (max-BIC k)", c});
        c = base;
        c.mergeThreshold = 0.0;
        configs.push_back({"no overlap merge", c});
        c = base;
        c.sampleCap = 500;
        configs.push_back({"sample cap 500", c});
        c = base;
        c.restarts = 1;
        configs.push_back({"single k-means restart", c});
    }

    for (const auto &[label, cfg] : configs) {
        AblationRow row = evaluate(label, cfg, graph);
        t.row({row.label, fmt(row.avgPoints, 1),
               fmt(row.avgPoints90, 1), fmtPct(row.avgMixErr)});
        csv.row({row.label, fmt(row.avgPoints, 2),
                 fmt(row.avgPoints90, 2), fmt(row.avgMixErr, 6)});
    }
    t.print();

    std::printf("\nReading the table: too few projection dims or a "
                "low BIC fraction lose phases\n(points drop, mix "
                "error rises); disabling the overlap merge inflates "
                "the point\ncount by splitting dominant phases.\n");
    bench::saveCsv(csv, argv[0]);
    return 0;
}
