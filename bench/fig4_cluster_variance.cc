/**
 * @file
 * Figure 4: average within-cluster variance of phase similarity as
 * the number of clusters varies, per benchmark.
 *
 * Paper finding: forcing fewer clusters makes phases squeeze into
 * ill-fitting clusters, inflating the average intra-cluster
 * variance; the curve falls monotonically with the cluster budget.
 */

#include "bench_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Within-cluster variance vs number of clusters",
                  "Figure 4");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(), {ArtifactKind::SimPoints});
    const u32 kPoints[] = {5, 10, 15, 20, 25, 30, 35};

    TableWriter t("Fig 4 - avg cluster variance (x1000) by #clusters");
    t.header({"Benchmark", "k=5", "k=10", "k=15", "k=20", "k=25",
              "k=30", "k=35"});
    CsvWriter csv;
    csv.header({"benchmark", "k", "avg_cluster_variance"});

    for (const auto &e : suiteTable()) {
        // The BIC sweep in the SimPoint selection already fit every
        // k in 1..MaxK; read the variance curve straight out of it.
        const SimPointResult &r = graph.simpoints(e.name);
        std::vector<std::string> cells = {e.name};
        for (u32 k : kPoints) {
            double var = 0.0;
            for (const auto &s : r.sweep)
                if (s.k == k)
                    var = s.avgClusterVariance;
            cells.push_back(fmt(var * 1000.0, 3));
            csv.row({e.name, std::to_string(k), fmt(var, 8)});
        }
        t.row(cells);
    }
    t.print();

    std::printf("\nExpected shape: variance decreases monotonically "
                "with the cluster budget\n(fewer clusters force "
                "dissimilar phases together).\n");
    bench::saveCsv(csv, argv[0]);
    return 0;
}
