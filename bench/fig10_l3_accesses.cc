/**
 * @file
 * Figure 10: number of L3 cache accesses performed by Whole,
 * Regional and Reduced Regional runs (Table I hierarchy).
 *
 * Paper finding: sampled replays perform orders of magnitude fewer
 * L3 accesses than the whole run — the root cause of the L3
 * miss-rate discrepancy in Figure 8 (cold-start misses are averaged
 * over far fewer accesses).
 */

#include "bench_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("L3 accesses: Whole vs Regional vs Reduced",
                  "Figure 10");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(), {ArtifactKind::WholeCache,
                                  ArtifactKind::PointsCacheCold});
    TableWriter t("Fig 10 - L3 cache accesses");
    t.header({"Benchmark", "Whole Run", "Regional", "Reduced",
              "Whole/Regional"});
    CsvWriter csv;
    csv.header({"benchmark", "whole_l3", "regional_l3",
                "reduced_l3"});

    double sumW = 0, sumR = 0, sumRR = 0;
    for (const auto &e : suiteTable()) {
        u64 whole = graph.wholeCache(e.name).l3.accesses;
        const auto &pts = graph.pointsCacheCold(e.name);
        auto reduced = reduceToQuantile(pts, 0.9);
        u64 regional = 0, rr = 0;
        for (const auto &p : pts)
            regional += p.m.l3.accesses;
        for (const auto &p : reduced)
            rr += p.m.l3.accesses;

        t.row({e.name, fmtSi(static_cast<double>(whole), 2),
               fmtSi(static_cast<double>(regional), 2),
               fmtSi(static_cast<double>(rr), 2),
               fmtX(regional ? static_cast<double>(whole) /
                                   static_cast<double>(regional)
                             : 0.0, 0)});
        csv.row({e.name, std::to_string(whole),
                 std::to_string(regional), std::to_string(rr)});
        sumW += static_cast<double>(whole);
        sumR += static_cast<double>(regional);
        sumRR += static_cast<double>(rr);
    }
    double n = static_cast<double>(suiteTable().size());
    t.separator();
    t.row({"Average", fmtSi(sumW / n, 2), fmtSi(sumR / n, 2),
           fmtSi(sumRR / n, 2), fmtX(sumW / sumR, 0)});
    t.print();

    std::printf("\nExpected shape: Regional/Reduced runs touch the "
                "L3 orders of magnitude less\noften than the Whole "
                "Run (measured: %.0fx fewer on average).\n",
                sumW / sumR);
    bench::saveCsv(csv, argv[0]);
    return 0;
}
