/**
 * @file
 * Figure 5: dynamic instruction count and execution time of Whole,
 * Regional and Reduced Regional runs.
 *
 * Paper findings: Regional runs execute ~650x fewer instructions and
 * finish ~750x faster than Whole runs (6,873.9B -> 10.4B instrs,
 * 213.2h -> 17.17min on average); Reduced Regional runs improve this
 * to ~1225x / ~1297x.  Time at paper scale comes from the replay
 * cost model (core/costmodel.hh); model-scale wall-clock times are
 * reported alongside.
 */

#include "bench_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Whole vs Regional vs Reduced Regional runs",
                  "Figure 5(a) instruction count, 5(b) time");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    ReplayCostModel cost = graph.config().cost;

    bench::ReportSink sink(
        argv[0], "Fig 5 - run sizes and paper-equivalent times");
    sink.schema({{"Benchmark", "benchmark"},
                 {"Whole (instr)", "whole_instrs"},
                 {"Regional", "regional_instrs"},
                 {"Reduced", "reduced_instrs"},
                 {"I-ratio R", ""},
                 {"I-ratio RR", ""},
                 {"Whole time", "whole_hours"},
                 {"Regional", "regional_min"},
                 {"Reduced", "reduced_min"},
                 {"T-ratio R", ""},
                 {"T-ratio RR", ""},
                 {"", "wall_whole_s", /*wallClock=*/true},
                 {"", "wall_regional_s", /*wallClock=*/true}});
    graph.config().describe(sink.manifest());

    const auto names = suiteNames();
    const std::vector<ArtifactKind> targets = {
        ArtifactKind::WholeCache, ArtifactKind::PointsCacheCold};
    graph.runSuite(names, targets);
    graph.recordArtifacts(sink.manifest(), names, targets);

    double sumIW = 0, sumIR = 0, sumIRR = 0;
    double sumTW = 0, sumTR = 0, sumTRR = 0;
    for (const auto &e : suiteTable()) {
        ICount whole = graph.spec(e.name).totalInstrs();
        // Run-length equivalence: the suite table's paper-scale
        // dynamic instruction count maps this benchmark's model run
        // onto the paper's testbed (absorbing the replay overhead
        // the paper's pinballs carry).
        double paperScale = e.paperInstrsB * 1e9 /
                            static_cast<double>(whole);
        const auto &pts = graph.pointsCacheCold(e.name);
        auto reduced = reduceToQuantile(pts, 0.9);
        ICount regional = 0, rr = 0;
        double wallR = 0;
        for (const auto &p : pts) {
            regional += p.m.instrs;
            wallR += p.m.wallSeconds;
        }
        for (const auto &p : reduced)
            rr += p.m.instrs;

        double tW = cost.wholeSeconds(
            static_cast<double>(whole) * paperScale);
        double tR = cost.regionalSeconds(
            static_cast<double>(regional) * paperScale,
            pts.size());
        double tRR = cost.regionalSeconds(
            static_cast<double>(rr) * paperScale, reduced.size());

        sink.row(
            {e.name,
             {fmtSi(static_cast<double>(whole), 1),
              std::to_string(whole)},
             {fmtSi(static_cast<double>(regional), 1),
              std::to_string(regional)},
             {fmtSi(static_cast<double>(rr), 1), std::to_string(rr)},
             fmtX(static_cast<double>(whole) /
                  static_cast<double>(regional)),
             fmtX(static_cast<double>(whole) /
                  static_cast<double>(rr)),
             {fmt(tW / 3600.0, 1) + " h", fmt(tW / 3600.0, 3)},
             {fmt(tR / 60.0, 1) + " m", fmt(tR / 60.0, 3)},
             {fmt(tRR / 60.0, 1) + " m", fmt(tRR / 60.0, 3)},
             fmtX(tW / tR), fmtX(tW / tRR),
             fmt(graph.wholeCache(e.name).wallSeconds, 3),
             fmt(wallR, 3)});
        sumIW += static_cast<double>(whole);
        sumIR += static_cast<double>(regional);
        sumIRR += static_cast<double>(rr);
        sumTW += tW;
        sumTR += tR;
        sumTRR += tRR;
    }
    double n = static_cast<double>(suiteTable().size());
    sink.separator();
    sink.tableOnlyRow(
        {"Average", fmtSi(sumIW / n, 1), fmtSi(sumIR / n, 1),
         fmtSi(sumIRR / n, 1), fmtX(sumIW / sumIR),
         fmtX(sumIW / sumIRR), fmt(sumTW / n / 3600.0, 1) + " h",
         fmt(sumTR / n / 60.0, 1) + " m",
         fmt(sumTRR / n / 60.0, 1) + " m", fmtX(sumTW / sumTR),
         fmtX(sumTW / sumTRR)});
    sink.finish();

    std::printf("\nPaper: ~650x fewer instructions / ~750x less time "
                "(Regional); ~1225x / ~1297x (Reduced).\n"
                "Measured: %.0fx / %.0fx (Regional); %.0fx / %.0fx "
                "(Reduced).\n",
                sumIW / sumIR, sumTW / sumTR, sumIW / sumIRR,
                sumTW / sumTRR);
    return 0;
}
