/**
 * @file
 * Baseline comparison (extension): SimPoint vs behaviour-oblivious
 * sampling at the same region budget.
 *
 * SimFlex/SMARTS-style systematic sampling and uniform random
 * sampling pick the same *number* of regions as the BIC-chosen
 * SimPoint selection, so any accuracy difference is attributable to
 * behaviour-aware placement and weighting.  Related work the paper
 * discusses in Section V-B.
 */

#include "bench_util.hh"
#include "sampling/strategy.hh"
#include "support/stats_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("SimPoint vs systematic vs random sampling",
                  "Section V-B baselines (extension)");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(),
                   {ArtifactKind::SimPoints, ArtifactKind::WholeCache,
                    ArtifactKind::Native});
    TableWriter t("Sampling accuracy at equal region budget "
                  "(suite averages)");
    t.header({"Strategy", "Mix err (pts)", "L1D err", "L3 err",
              "CPI err vs native"});
    CsvWriter csv;
    csv.header({"strategy", "benchmark", "mix_err", "l1d_err",
                "l3_err", "cpi_err"});

    struct Acc
    {
        double mix = 0, l1d = 0, l3 = 0, cpi = 0;
    };
    Acc acc[3];
    const char *labels[3] = {"SimPoint (weighted)", "systematic",
                             "random"};

    double n = 0;
    for (const auto &e : suiteTable()) {
        const BenchmarkSpec &spec = graph.spec(e.name);
        auto whole = wholeAsAggregate(graph.wholeCache(e.name));
        double nativeCpi = graph.native(e.name).cpi();
        const SimPointResult &sp = graph.simpoints(e.name);
        u32 budget = static_cast<u32>(sp.points.size());

        // The oblivious baselines come from the strategy registry at
        // the SimPoint budget; SimPointResult views keep the
        // measurement helpers unchanged.
        SamplingConfig sampCfg;
        sampCfg.stride.n = budget;
        sampCfg.random.n = budget;
        sampCfg.random.seed = spec.seed;
        StrategyInputs in{nullptr, sp.totalSlices, sp.sliceInstrs};
        SimPointResult strategies[3] = {
            sp,
            simPointsFromRegions(
                makeStrategy("stride", sampCfg,
                             graph.config().simpoint)
                    ->select(in)),
            simPointsFromRegions(
                makeStrategy("random", sampCfg,
                             graph.config().simpoint)
                    ->select(in)),
        };

        for (int s = 0; s < 3; ++s) {
            auto cachePts = measurePointsCache(
                spec, strategies[s], graph.config().allcache, 0);
            auto agg = aggregateCache(cachePts);
            double mixErr = 0;
            for (int c = 0; c < 4; ++c)
                mixErr = std::max(mixErr,
                                  std::fabs(agg.mixFrac[c] -
                                            whole.mixFrac[c]));
            double l1dErr =
                relativeError(agg.l1dMissRate, whole.l1dMissRate);
            double l3Err =
                relativeError(agg.l3MissRate, whole.l3MissRate);

            auto timingPts = measurePointsTiming(
                spec, strategies[s], graph.config().machine,
                graph.config().warmupChunks);
            double cpiErr = relativeError(
                aggregateTiming(timingPts).cpi, nativeCpi);

            acc[s].mix += mixErr;
            acc[s].l1d += l1dErr;
            acc[s].l3 += l3Err;
            acc[s].cpi += cpiErr;
            csv.row({labels[s], e.name, fmt(mixErr, 6),
                     fmt(l1dErr, 6), fmt(l3Err, 6),
                     fmt(cpiErr, 6)});
        }
        n += 1;
    }

    for (int s = 0; s < 3; ++s)
        t.row({labels[s], fmtPct(acc[s].mix / n),
               fmtPct(acc[s].l1d / n), fmtPct(acc[s].l3 / n),
               fmtPct(acc[s].cpi / n)});
    t.print();

    std::printf("\nExpected shape: all three agree on the broad "
                "instruction mix, but SimPoint's\nbehaviour-aware "
                "placement + weighting wins on CPI; oblivious "
                "sampling needs\nmany more regions to match it "
                "(SMARTS uses thousands).\n");
    bench::saveCsv(csv, argv[0]);
    return 0;
}
