/**
 * @file
 * Figure 9: suite-average metric errors (vs Whole Run) and execution
 * time as the simulation-point percentile shrinks from 100 to 50.
 *
 * Paper findings: errors rise as points are dropped; execution time
 * falls; 100 and 90 percentile correspond to the Regional and
 * Reduced Regional runs.
 */

#include "bench_util.hh"
#include "support/stats_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Accuracy/runtime trade-off vs simulation-point "
                  "percentile", "Figure 9");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(), {ArtifactKind::WholeCache,
                                  ArtifactKind::PointsCacheCold});
    ReplayCostModel cost;
    const double percentiles[] = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5};

    TableWriter t("Fig 9 - average error vs Whole Run, and "
                  "paper-equivalent execution time");
    t.header({"Percentile", "Mix err (pts)", "L1D err", "L2 err",
              "L3 err", "Exec time (min)", "Points/bench"});
    CsvWriter csv;
    csv.header({"percentile", "mix_err", "l1d_err", "l2_err",
                "l3_err", "exec_minutes", "avg_points"});

    for (double q : percentiles) {
        double mixErr = 0, err[3] = {}, execS = 0, pts = 0;
        double n = 0;
        for (const auto &e : suiteTable()) {
            auto whole = wholeAsAggregate(graph.wholeCache(e.name));
            auto sub =
                reduceToQuantile(graph.pointsCacheCold(e.name), q);
            auto agg = aggregateCache(sub);

            double m = 0;
            for (int i = 0; i < 4; ++i)
                m = std::max(m, std::fabs(agg.mixFrac[i] -
                                          whole.mixFrac[i]));
            mixErr += m;
            err[0] += relativeError(agg.l1dMissRate,
                                    whole.l1dMissRate);
            err[1] += relativeError(agg.l2MissRate,
                                    whole.l2MissRate);
            err[2] += relativeError(agg.l3MissRate,
                                    whole.l3MissRate);
            double paperScale =
                e.paperInstrsB * 1e9 /
                static_cast<double>(
                    graph.spec(e.name).totalInstrs());
            execS += cost.regionalSeconds(
                static_cast<double>(agg.executedInstrs) *
                    paperScale,
                sub.size());
            pts += static_cast<double>(sub.size());
            n += 1.0;
        }
        t.row({fmt(q * 100, 0), fmtPct(mixErr / n),
               fmtPct(err[0] / n), fmtPct(err[1] / n),
               fmtPct(err[2] / n), fmt(execS / n / 60.0, 2),
               fmt(pts / n, 1)});
        csv.row({fmt(q, 2), fmt(mixErr / n, 6), fmt(err[0] / n, 6),
                 fmt(err[1] / n, 6), fmt(err[2] / n, 6),
                 fmt(execS / n / 60.0, 4), fmt(pts / n, 2)});
    }
    t.print();

    std::printf("\nExpected shape: errors grow and execution time "
                "falls as the percentile\nshrinks; 100 = Regional, "
                "90 = Reduced Regional.\n");
    bench::saveCsv(csv, argv[0]);
    return 0;
}
