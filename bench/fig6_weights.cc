/**
 * @file
 * Figure 6: weight of each simulation point per benchmark, with the
 * 90% cumulative cut (the dashed line in the paper's stacked bars).
 *
 * Paper findings: most programs have < 25 points; 503.bwaves_r has
 * one ~60% dominant point and its top three cover ~80%; benchmarks
 * like 631.deepsjeng_s / 648.exchange2_s / 511.povray_r are nearly
 * uniform; several FP codes carry many insignificant points.
 */

#include "bench_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Simulation-point weight distribution", "Figure 6");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(), {ArtifactKind::SimPoints});
    TableWriter t("Fig 6 - per-benchmark weight profile");
    t.header({"Benchmark", "Points", "Top-1", "Top-3 cum",
              "90% cut at", "Weights (descending, top 8)"});
    CsvWriter csv;
    csv.header({"benchmark", "rank", "weight", "cumulative",
                "within_90pct"});

    for (const auto &e : suiteTable()) {
        const SimPointResult &r = graph.simpoints(e.name);
        auto sorted = r.byDescendingWeight();
        std::size_t cut = r.topByWeight(0.9).size();

        double cum = 0.0;
        double top1 = 0.0, top3 = 0.0;
        std::string preview;
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            cum += sorted[i].weight;
            if (i == 0)
                top1 = sorted[i].weight;
            if (i == 2)
                top3 = cum;
            if (i < 8) {
                preview += fmt(sorted[i].weight * 100.0, 1);
                preview += i + 1 < sorted.size() && i < 7 ? " " : "";
            }
            csv.row({e.name, std::to_string(i + 1),
                     fmt(sorted[i].weight, 6), fmt(cum, 6),
                     i < cut ? "1" : "0"});
        }
        if (sorted.size() < 3)
            top3 = cum;
        if (sorted.size() > 8)
            preview += " ...";
        t.row({e.name, std::to_string(sorted.size()), fmtPct(top1, 1),
               fmtPct(top3, 1), std::to_string(cut), preview});
    }
    t.print();

    const SimPointResult &bw = graph.simpoints("503.bwaves_r");
    auto bwSorted = bw.byDescendingWeight();
    double bwTop3 = bwSorted[0].weight + bwSorted[1].weight +
                    bwSorted[2].weight;
    std::printf("\nPaper: bwaves_r has one ~60%% point and top-3 "
                "cover ~80%%.  Measured: top-1 %.1f%%, top-3 "
                "%.1f%%.\n", bwSorted[0].weight * 100.0,
                bwTop3 * 100.0);
    bench::saveCsv(csv, argv[0]);
    return 0;
}
