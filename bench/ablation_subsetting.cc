/**
 * @file
 * Suite subsetting (extension; related-work methodology of Limaye &
 * Adegbija / Panda et al.): cluster the 29 benchmarks on whole-run
 * architecture-level features and report representative subsets —
 * the complementary axis of statistical sampling to SimPoint's
 * within-benchmark phases.
 *
 * (Not a paper figure; reproduces the related-work methodology the
 * paper positions itself against.)
 */

#include "bench_util.hh"
#include "core/subsetting.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Benchmark-suite subsetting",
                  "Related work, Section V-A (extension)");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(), {ArtifactKind::WholeCache,
                                  ArtifactKind::WholeTiming});
    std::vector<BenchmarkFeatures> features;
    for (const auto &e : suiteTable())
        features.push_back(makeFeatures(e.name,
                                        graph.wholeCache(e.name),
                                        graph.wholeTiming(e.name)));

    CsvWriter csv;
    csv.header({"subset_size", "benchmark", "cluster",
                "representative", "representation_error"});

    TableWriter t("Representative subsets of the modelled suite");
    t.header({"Subset size", "Representation error",
              "Representatives"});
    for (std::size_t k : {4u, 8u, 12u}) {
        SuiteSubset s = subsetSuite(features, k);
        double err = subsetRepresentationError(features, s);
        std::string reps;
        for (u32 r : s.representatives) {
            reps += features[r].name;
            reps += " ";
        }
        if (reps.size() > 70)
            reps = reps.substr(0, 67) + "...";
        t.row({std::to_string(k), fmt(err, 3), reps});
        for (std::size_t i = 0; i < features.size(); ++i) {
            bool isRep = false;
            for (u32 r : s.representatives)
                isRep = isRep || r == i;
            csv.row({std::to_string(k), features[i].name,
                     std::to_string(s.assignment[i]),
                     isRep ? "1" : "0", fmt(err, 6)});
        }
    }
    t.print();

    // Sanity narrative: the INT and FP domains should rarely share
    // clusters at small subset sizes.
    SuiteSubset s8 = subsetSuite(features, 8);
    int mixedClusters = 0;
    for (u32 c = 0; c < s8.clusterCount(); ++c) {
        bool hasInt = false, hasFp = false;
        for (std::size_t i = 0; i < features.size(); ++i) {
            if (s8.assignment[i] != c)
                continue;
            if (suiteTable()[i].domain == SuiteDomain::FpRate)
                hasFp = true;
            else
                hasInt = true;
        }
        mixedClusters += hasInt && hasFp;
    }
    std::printf("\nAt subset size 8, %d of 8 clusters mix INT and "
                "FP benchmarks (fewer is the\nexpected outcome: the "
                "domains differ in mix, locality and CPI).\n",
                mixedClusters);
    bench::saveCsv(csv, argv[0]);

    obs::RunManifest mani(bench::toolName(argv[0]));
    mani.recordEnv("SPLAB_SCALE");
    mani.recordEnv("SPLAB_CACHE");
    mani.recordEnv("SPLAB_FUSED_PERSIST");
    graph.config().describe(mani);
    graph.recordArtifacts(mani, suiteNames(),
                          {ArtifactKind::WholeCache,
                           ArtifactKind::WholeTiming});
    mani.addOutput(bench::csvPath(argv[0]));
    bench::emitObservability(argv[0], mani);
    return 0;
}
