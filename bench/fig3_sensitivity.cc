/**
 * @file
 * Figure 3: sensitivity of SimPoint accuracy to MaxK and slice size,
 * for 623.xalancbmk_s.
 *
 * (a) MaxK in {15, 20, 25, 30, 35} at a 30M-equivalent slice;
 * (b) slice in {15, 25, 30, 50, 100}M-equivalent at MaxK = 35.
 *
 * Metrics (vs the full run): ldstmix instruction distribution and
 * allcache miss rates for the Table I hierarchy.  Paper findings:
 * small MaxK distorts the instruction distribution; small slices
 * inflate miss rates of the far caches (cold-cache effect), larger
 * slices pull L3 miss rates back toward the full run.
 */

#include "bench_util.hh"
#include "core/scale.hh"

using namespace splab;

namespace
{

struct ConfigRow
{
    std::string label;
    AggregateCacheMetrics agg;
};

ConfigRow
runConfig(const BenchmarkSpec &spec, u32 maxK, double sliceM,
          const HierarchyConfig &caches, ArtifactGraph &graph)
{
    SimPointConfig cfg;
    cfg.maxK = maxK;
    cfg.sliceInstrs = scale::sliceForPaperMillions(sliceM);
    // Share the graph's cache instance: one writability probe and
    // one counter stream per process.
    PinPointsPipeline pipe(cfg, graph.cacheHandle());
    SimPointResult sp = pipe.simpoints(spec);
    auto points = measurePointsCache(spec, sp, caches, 0);
    ConfigRow row;
    row.label = "MaxK=" + std::to_string(maxK) + ", slice=" +
                fmt(sliceM, 0) + "M";
    row.agg = aggregateCache(points);
    return row;
}

void
emit(TableWriter &t, CsvWriter &csv, const std::string &label,
     const AggregateCacheMetrics &m)
{
    t.row({label, fmtPct(m.mixFrac[0]), fmtPct(m.mixFrac[1]),
           fmtPct(m.mixFrac[2]), fmtPct(m.mixFrac[3]),
           fmtPct(m.l1dMissRate), fmtPct(m.l2MissRate),
           fmtPct(m.l3MissRate)});
    csv.row({label, fmt(m.mixFrac[0], 6), fmt(m.mixFrac[1], 6),
             fmt(m.mixFrac[2], 6), fmt(m.mixFrac[3], 6),
             fmt(m.l1dMissRate, 6), fmt(m.l2MissRate, 6),
             fmt(m.l3MissRate, 6)});
}

} // namespace

int
main(int, char **argv)
{
    bench::banner("MaxK and slice-size sensitivity (xalancbmk_s)",
                  "Figure 3(a) and 3(b)");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    const std::string name = "623.xalancbmk_s";
    const BenchmarkSpec &spec = graph.spec(name);
    const HierarchyConfig caches = tableIConfig();

    AggregateCacheMetrics whole =
        wholeAsAggregate(graph.wholeCache(name));

    CsvWriter csv;
    csv.header({"config", "no_mem", "mem_r", "mem_w", "mem_rw",
                "l1d_miss", "l2_miss", "l3_miss"});

    TableWriter ta("Fig 3(a) - varying MaxK (slice = 30M-eq)");
    ta.header({"Config", "NO_MEM", "MEM_R", "MEM_W", "MEM_RW",
               "L1D miss", "L2 miss", "L3 miss"});
    emit(ta, csv, "Full Run", whole);
    ta.separator();
    for (u32 maxK : scale::kMaxKSweep) {
        ConfigRow row =
            runConfig(spec, maxK, scale::kChosenSliceM, caches,
                      graph);
        emit(ta, csv, row.label, row.agg);
    }
    ta.print();

    TableWriter tb("Fig 3(b) - varying slice size (MaxK = 35)");
    tb.header({"Config", "NO_MEM", "MEM_R", "MEM_W", "MEM_RW",
               "L1D miss", "L2 miss", "L3 miss"});
    emit(tb, csv, "Full Run", whole);
    tb.separator();
    for (double sliceM : scale::kPaperSliceSweepM) {
        ConfigRow row =
            runConfig(spec, scale::kChosenMaxK, sliceM, caches,
                      graph);
        emit(tb, csv, row.label, row.agg);
    }
    tb.print();

    std::printf("\nExpected shape: instruction-mix errors shrink as "
                "MaxK grows; L3 miss-rate\nerror shrinks as the "
                "slice grows (cold-cache effect fades).\n");
    bench::saveCsv(csv, argv[0]);
    return 0;
}
