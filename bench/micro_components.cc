/**
 * @file
 * Component micro-benchmarks (google-benchmark): engine throughput,
 * cache access, k-means, random projection, branch predictor; plus
 * the projection-dimension ablation called out in DESIGN.md.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "pin/engine.hh"
#include "pin/tools/allcache.hh"
#include "pin/tools/bbv_tool.hh"
#include "simpoint/kmeans.hh"
#include "simpoint/projection.hh"
#include "support/rng.hh"
#include "timing/branch_predictor.hh"
#include "timing/interval_core.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

BenchmarkSpec
microSpec(u64 chunks)
{
    BenchmarkSpec s;
    s.name = "micro";
    s.seed = 7;
    s.totalChunks = chunks;
    s.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 0.5;
    a.kernel = KernelKind::ZipfHotCold;
    a.workingSetBytes = 8 << 20;
    PhaseSpec b;
    b.weight = 0.5;
    b.kernel = KernelKind::Stream;
    b.workingSetBytes = 32 << 20;
    s.phases = {a, b};
    s.schedule = ScheduleKind::Markov;
    s.dwellChunks = 60;
    return s;
}

/** Discards all events; measures raw generation speed. */
class NullTool : public PinTool
{
  public:
    explicit NullTool(bool mem) : mem(mem) {}
    const char *name() const override { return "null"; }
    bool wantsMemory() const override { return mem; }
    void
    onBlock(const BlockRecord &rec, const MemAccess *, std::size_t,
            const BranchRecord *) override
    {
        instrs += rec.instrs;
    }
    ICount instrs = 0;
    bool mem;
};

void
BM_EngineMixOnly(benchmark::State &state)
{
    SyntheticWorkload wl(microSpec(1000));
    NullTool tool(false);
    Engine engine;
    engine.attach(&tool);
    for (auto _ : state)
        engine.run(wl, 0, 1000);
    state.SetItemsProcessed(static_cast<int64_t>(tool.instrs));
}
BENCHMARK(BM_EngineMixOnly)->Unit(benchmark::kMillisecond);

void
BM_EngineWithAddresses(benchmark::State &state)
{
    SyntheticWorkload wl(microSpec(1000));
    NullTool tool(true);
    Engine engine;
    engine.attach(&tool);
    for (auto _ : state)
        engine.run(wl, 0, 1000);
    state.SetItemsProcessed(static_cast<int64_t>(tool.instrs));
}
BENCHMARK(BM_EngineWithAddresses)->Unit(benchmark::kMillisecond);

void
BM_EngineAllCache(benchmark::State &state)
{
    SyntheticWorkload wl(microSpec(1000));
    AllCacheTool cache(tableIConfig());
    Engine engine;
    engine.attach(&cache);
    ICount instrs = 0;
    for (auto _ : state)
        instrs += engine.run(wl, 0, 1000);
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}
BENCHMARK(BM_EngineAllCache)->Unit(benchmark::kMillisecond);

void
BM_EngineTiming(benchmark::State &state)
{
    SyntheticWorkload wl(microSpec(1000));
    IntervalCoreTool core(tableIIIMachine());
    Engine engine;
    engine.attach(&core);
    ICount instrs = 0;
    for (auto _ : state)
        instrs += engine.run(wl, 0, 1000);
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}
BENCHMARK(BM_EngineTiming)->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache({"l1", 32 * 1024, 8, 64});
    Rng rng(1);
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = rng.next() & ((1 << 22) - 1);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i & 4095], false));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorUpdate(benchmark::State &state)
{
    TournamentPredictor p(14);
    Rng rng(2);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            p.update(0x400000 + (i % 64) * 16, (i & 7) != 0));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PredictorUpdate);

void
BM_Projection(benchmark::State &state)
{
    RandomProjection proj(static_cast<u32>(state.range(0)), 5);
    FrequencyVector v;
    Rng rng(3);
    for (u32 b = 0; b < 64; ++b)
        v.entries.push_back({b * 3, static_cast<float>(
                                        rng.uniform())});
    std::vector<double> out;
    for (auto _ : state) {
        proj.project(v, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// Ablation: SimPoint's 15 dims vs cheaper/richer projections.
BENCHMARK(BM_Projection)->Arg(5)->Arg(15)->Arg(30);

void
BM_KMeans(benchmark::State &state)
{
    const u32 k = static_cast<u32>(state.range(0));
    Rng rng(4);
    std::vector<std::vector<double>> pts(2000,
                                         std::vector<double>(15));
    for (auto &p : pts)
        for (auto &x : p)
            x = rng.uniform(-1.0, 1.0);
    DenseMatrix m = DenseMatrix::fromRows(pts);
    for (auto _ : state) {
        KMeansResult r = kmeansFit(m, k, 1, 20);
        benchmark::DoNotOptimize(r.distortion);
    }
}
BENCHMARK(BM_KMeans)->Arg(8)->Arg(20)->Arg(35)
    ->Unit(benchmark::kMillisecond);

void
BM_BbvProfiling(benchmark::State &state)
{
    SyntheticWorkload wl(microSpec(2000));
    for (auto _ : state) {
        BbvTool bbv(10000);
        Engine engine;
        engine.attach(&bbv);
        engine.run(wl, 0, 2000);
        benchmark::DoNotOptimize(bbv.vectors().size());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 2000 * 1000);
}
BENCHMARK(BM_BbvProfiling)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace splab

BENCHMARK_MAIN();
