/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints the paper-style table to stdout and mirrors the
 * raw series to "<binary>.csv" so results can be re-plotted.  Heavy
 * intermediates are shared across bench binaries through the on-disk
 * artifact cache (see core/artifact_cache.hh).
 */

#ifndef SPLAB_BENCH_BENCH_UTIL_HH
#define SPLAB_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "core/experiments.hh"
#include "support/env.hh"
#include "support/table.hh"

namespace splab
{
namespace bench
{

/** CSV path next to the running binary: "<argv0>.csv". */
inline std::string
csvPath(const char *argv0)
{
    return std::string(argv0) + ".csv";
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("\n################################################"
                "######################\n");
    std::printf("## %s\n", what.c_str());
    std::printf("## Reproduces: %s\n", paperRef.c_str());
    std::printf("## Scale: 1 model slice = 10,000 instrs "
                "(paper: 30M); SPLAB_SCALE=%.3g\n",
                workloadScale());
    std::printf("##################################################"
                "####################\n\n");
    std::fflush(stdout);
}

/** Save a CSV and tell the user where it went. */
inline void
saveCsv(const CsvWriter &csv, const char *argv0)
{
    std::string path = csvPath(argv0);
    if (csv.save(path))
        std::printf("\n[csv] raw series written to %s\n",
                    path.c_str());
    else
        std::printf("\n[csv] FAILED to write %s\n", path.c_str());
}

} // namespace bench
} // namespace splab

#endif // SPLAB_BENCH_BENCH_UTIL_HH
