/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints the paper-style table to stdout and mirrors the
 * raw series to "<binary>.csv" so results can be re-plotted.  Heavy
 * intermediates are shared across bench binaries through the on-disk
 * artifact cache (see core/artifact_cache.hh).
 */

#ifndef SPLAB_BENCH_BENCH_UTIL_HH
#define SPLAB_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/artifact_graph.hh"
#include "obs/manifest.hh"
#include "obs/trace.hh"
#include "support/env.hh"
#include "support/table.hh"

namespace splab
{
namespace bench
{

/** CSV path next to the running binary: "<argv0>.csv". */
inline std::string
csvPath(const char *argv0)
{
    return std::string(argv0) + ".csv";
}

/** Print the standard bench banner. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("\n################################################"
                "######################\n");
    std::printf("## %s\n", what.c_str());
    std::printf("## Reproduces: %s\n", paperRef.c_str());
    std::printf("## Scale: 1 model slice = 10,000 instrs "
                "(paper: 30M); SPLAB_SCALE=%.3g\n",
                workloadScale());
    std::printf("##################################################"
                "####################\n\n");
    std::fflush(stdout);
}

/** Save a CSV and tell the user where it went. */
inline void
saveCsv(const CsvWriter &csv, const char *argv0)
{
    std::string path = csvPath(argv0);
    if (csv.save(path))
        std::printf("\n[csv] raw series written to %s\n",
                    path.c_str());
    else
        std::printf("\n[csv] FAILED to write %s\n", path.c_str());
}

/** Basename of the running binary ("fig5_reduction"). */
inline std::string
toolName(const char *argv0)
{
    std::string s(argv0);
    std::size_t slash = s.find_last_of('/');
    return slash == std::string::npos ? s : s.substr(slash + 1);
}

/**
 * Emit the observability artifacts of a finished bench run: the
 * span tree + Chrome trace JSON ("<argv0>.trace.json") when
 * SPLAB_TRACE=1, and the run manifest ("<argv0>.manifest.json")
 * unless SPLAB_MANIFEST=0.  @p manifest should already carry the
 * configuration and output files of the run.
 */
inline void
emitObservability(const char *argv0, obs::RunManifest &manifest)
{
    if (obs::tracingEnabled()) {
        std::fputs("\n", stdout);
        std::fputs(obs::renderSpanTree().c_str(), stdout);
        std::string tracePath = std::string(argv0) + ".trace.json";
        if (obs::writeChromeTrace(tracePath))
            std::printf("[trace] Chrome trace written to %s\n",
                        tracePath.c_str());
    }
    if (obs::manifestEnabled()) {
        std::string maniPath =
            std::string(argv0) + ".manifest.json";
        if (manifest.write(maniPath))
            std::printf("[manifest] run manifest written to %s\n",
                        maniPath.c_str());
        else
            std::printf("[manifest] FAILED to write %s\n",
                        maniPath.c_str());
    }
}

/**
 * One declaration drives every bench output: the paper-style ASCII
 * table, the raw CSV mirror, and the run manifest.
 *
 * Declare the combined row schema once with schema(); each Column
 * may appear in the table only (empty csv header), in the CSV only
 * (empty table header), or in both.  A row() feeds both outputs from
 * one list of Cells — a Cell built from a single string serves both
 * representations, Cell{table, csv} splits them (formatted table
 * text vs raw CSV value).  Benches whose table and CSV rows do not
 * align structurally (e.g. one table row summarising several CSV
 * rows) use the tableOnlyRow()/csvOnlyRow() escape hatches.
 *
 * finish() prints the table, saves the CSV, folds the CSV's content
 * hash into the manifest and emits the trace + manifest artifacts.
 */
class ReportSink
{
  public:
    struct Column
    {
        std::string table; ///< table header; "" = not in the table
        std::string csv;   ///< csv header; "" = not in the CSV
        /** This CSV column holds a wall-clock measurement.  The
         *  manifest then records the CSV by a digest of the
         *  deterministic columns only, keeping the manifest's
         *  outputs section thread-count- and machine-invariant. */
        bool wallClock = false;
    };

    /** One row value; carries the text of each representation. */
    struct Cell
    {
        std::string table;
        std::string csv;

        Cell(const char *both) : table(both), csv(both) {}
        Cell(const std::string &both) : table(both), csv(both) {}
        Cell(std::string tableText, std::string csvText)
            : table(std::move(tableText)), csv(std::move(csvText))
        {}
    };

    ReportSink(const char *argv0, std::string tableTitle)
        : binaryPath(argv0), tbl(std::move(tableTitle)),
          mani(toolName(argv0))
    {
        mani.recordEnv("SPLAB_SCALE");
        mani.recordEnv("SPLAB_CACHE");
        mani.recordEnv("SPLAB_LOG");
        mani.recordEnv("SPLAB_TRACE");
        mani.recordEnv("SPLAB_MANIFEST");
        mani.recordEnv("SPLAB_KMEANS_ACCEL");
    }

    /** Declare the combined column set; call once, before rows. */
    void
    schema(std::vector<Column> columns)
    {
        cols = std::move(columns);
        std::vector<std::string> th, ch;
        for (const Column &c : cols) {
            if (!c.table.empty())
                th.push_back(c.table);
            if (!c.csv.empty()) {
                ch.push_back(c.csv);
                csvWall.push_back(c.wallClock);
                hasWall = hasWall || c.wallClock;
                if (!c.wallClock)
                    foldDet(c.csv);
            }
        }
        tbl.header(std::move(th));
        csvW.header(ch);
    }

    /** Append one row to both the table and the CSV. */
    void
    row(const std::vector<Cell> &cells)
    {
        std::vector<std::string> tr, cr;
        for (std::size_t i = 0; i < cells.size() && i < cols.size();
             ++i) {
            if (!cols[i].table.empty())
                tr.push_back(cells[i].table);
            if (!cols[i].csv.empty())
                cr.push_back(cells[i].csv);
        }
        foldDetRow(cr);
        tbl.row(std::move(tr));
        csvW.row(cr);
    }

    /** Append a row to the ASCII table only. */
    void tableOnlyRow(std::vector<std::string> cells)
    {
        tbl.row(std::move(cells));
    }

    /** Append a row to the CSV only. */
    void csvOnlyRow(const std::vector<std::string> &cells)
    {
        foldDetRow(cells);
        csvW.row(cells);
    }

    /** Horizontal separator in the ASCII table. */
    void separator() { tbl.separator(); }

    /** The run manifest; add config via ExperimentConfig::describe
     *  and extra keys/outputs before finish(). */
    obs::RunManifest &manifest() { return mani; }

    /** Print the ASCII table early (before auxiliary tables or
     *  prose); finish() will not print it again. */
    void
    printTable()
    {
        if (tablePrinted)
            return;
        tablePrinted = true;
        tbl.print();
    }

    /** Print the table, save the CSV, emit trace + manifest. */
    void
    finish()
    {
        printTable();
        std::string path = csvPath(binaryPath.c_str());
        if (csvW.save(path)) {
            std::printf("\n[csv] raw series written to %s\n",
                        path.c_str());
            if (hasWall)
                mani.addOutputDigest(
                    path, obs::fnv1a64(detContent.data(),
                                       detContent.size()));
            else
                mani.addOutput(path);
        } else {
            std::printf("\n[csv] FAILED to write %s\n",
                        path.c_str());
        }
        emitObservability(binaryPath.c_str(), mani);
    }

  private:
    /** Fold one CSV cell into the deterministic-content digest. */
    void
    foldDet(const std::string &cell)
    {
        detContent += cell;
        detContent += '\x1f'; // unit separator: unambiguous joins
    }

    /** Fold a CSV row's deterministic (non-wall-clock) cells. */
    void
    foldDetRow(const std::vector<std::string> &csvCells)
    {
        for (std::size_t i = 0;
             i < csvCells.size() && i < csvWall.size(); ++i)
            if (!csvWall[i])
                foldDet(csvCells[i]);
        detContent += '\n';
    }

    std::string binaryPath;
    std::vector<Column> cols;
    std::vector<bool> csvWall; ///< per-CSV-column wall-clock flag
    bool hasWall = false;
    std::string detContent; ///< deterministic CSV cells, joined
    bool tablePrinted = false;
    TableWriter tbl;
    CsvWriter csvW;
    obs::RunManifest mani;
};

} // namespace bench
} // namespace splab

#endif // SPLAB_BENCH_BENCH_UTIL_HH
