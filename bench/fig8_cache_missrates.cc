/**
 * @file
 * Figure 8: L1D / L2 / L3 miss rates for Whole, Regional, Reduced
 * Regional and Warmup Regional runs (Table I hierarchy).
 *
 * Paper findings: relative to Whole runs, Regional replays inflate
 * the average miss rates by 0.18% (L1D), 0.10% (L2) and 25.16%
 * (L3); Reduced Regional is similar (2.23% / 0.33% / 25.53%); the
 * error grows with distance from the CPU because the cold-cache
 * effect dominates the far caches.  Warming the caches before each
 * point drops the L3 error from 25.16% to 9.08%.
 */

#include "bench_util.hh"
#include "support/stats_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Cache miss rates: Whole / Regional / Reduced / "
                  "Warmup", "Figure 8(a)-(d)");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    // Table rows are per-benchmark with combined "L1D | L2 | L3"
    // cells; CSV rows are per-(benchmark, run) with raw rates — the
    // two halves of the schema do not align, so rows go through the
    // table-only/CSV-only escape hatches.
    bench::ReportSink sink(argv[0],
                           "Fig 8 - miss rates (L1D | L2 | L3, %)");
    sink.schema({{"Benchmark", ""},
                 {"Whole", ""},
                 {"Regional", ""},
                 {"Reduced", ""},
                 {"Warmup Regional", ""},
                 {"", "benchmark"},
                 {"", "run"},
                 {"", "l1d_miss"},
                 {"", "l2_miss"},
                 {"", "l3_miss"}});
    graph.config().describe(sink.manifest());

    const auto names = suiteNames();
    const std::vector<ArtifactKind> targets = {
        ArtifactKind::WholeCache, ArtifactKind::PointsCacheCold,
        ArtifactKind::PointsCacheWarm};
    graph.runSuite(names, targets);
    graph.recordArtifacts(sink.manifest(), names, targets);

    auto cell = [](const AggregateCacheMetrics &m) {
        return fmt(m.l1dMissRate * 100, 1) + " | " +
               fmt(m.l2MissRate * 100, 1) + " | " +
               fmt(m.l3MissRate * 100, 1);
    };
    auto csvRow = [&](const std::string &b, const char *run,
                      const AggregateCacheMetrics &m) {
        sink.csvOnlyRow({b, run, fmt(m.l1dMissRate, 6),
                         fmt(m.l2MissRate, 6), fmt(m.l3MissRate, 6)});
    };

    // Suite-average relative errors vs the whole run.
    double errR[3] = {}, errRR[3] = {}, errW[3] = {};
    double n = 0.0;
    for (const auto &e : suiteTable()) {
        auto whole = wholeAsAggregate(graph.wholeCache(e.name));
        const auto &cold = graph.pointsCacheCold(e.name);
        auto regional = aggregateCache(cold);
        auto reduced = aggregateCache(reduceToQuantile(cold, 0.9));
        auto warm = aggregateCache(graph.pointsCacheWarm(e.name));

        sink.tableOnlyRow({e.name, cell(whole), cell(regional),
                           cell(reduced), cell(warm)});
        csvRow(e.name, "whole", whole);
        csvRow(e.name, "regional", regional);
        csvRow(e.name, "reduced", reduced);
        csvRow(e.name, "warmup", warm);

        const double w[3] = {whole.l1dMissRate, whole.l2MissRate,
                             whole.l3MissRate};
        const double r[3] = {regional.l1dMissRate,
                             regional.l2MissRate,
                             regional.l3MissRate};
        const double rr[3] = {reduced.l1dMissRate,
                              reduced.l2MissRate,
                              reduced.l3MissRate};
        const double wu[3] = {warm.l1dMissRate, warm.l2MissRate,
                              warm.l3MissRate};
        for (int l = 0; l < 3; ++l) {
            errR[l] += relativeError(r[l], w[l]);
            errRR[l] += relativeError(rr[l], w[l]);
            errW[l] += relativeError(wu[l], w[l]);
        }
        n += 1.0;
    }
    sink.printTable();

    TableWriter s("Fig 8 summary - average relative miss-rate error "
                  "vs Whole Run");
    s.header({"Run", "L1D", "L2", "L3", "Paper L3"});
    s.row({"Regional", fmtPct(errR[0] / n), fmtPct(errR[1] / n),
           fmtPct(errR[2] / n), "25.16%"});
    s.row({"Reduced Regional", fmtPct(errRR[0] / n),
           fmtPct(errRR[1] / n), fmtPct(errRR[2] / n), "25.53%"});
    s.row({"Warmup Regional", fmtPct(errW[0] / n),
           fmtPct(errW[1] / n), fmtPct(errW[2] / n), "9.08%"});
    s.print();

    std::printf("\nExpected shape: error grows toward the LLC "
                "(cold-start effect) and warm-up\ncollapses the L3 "
                "error; paper 25.16%% -> 9.08%%, measured %.2f%% -> "
                "%.2f%%.\n", errR[2] / n * 100, errW[2] / n * 100);
    sink.finish();
    return 0;
}
