/**
 * @file
 * Sampling-strategy comparison (extension): every SamplingStrategy
 * runs the same benchmarks through the artifact graph, and one table
 * compares instruction-mix / miss-rate / CPI error against the
 * strategy-aware reduction factor.
 *
 * Each strategy is its own parameterized artifact family (the
 * Regions node keys on the strategy salt + active knobs), so the six
 * selections, their regional pinballs and their replays coexist in
 * one artifact cache; the whole-run references are shared across
 * strategies through the same cache handle.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.hh"
#include "support/stats_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Sampling-strategy comparison",
                  "Section V methodology comparison (extension)");

    // Three small benchmarks keep six strategies tractable at any
    // scale; the graph fans (strategy x benchmark) work out itself.
    const std::vector<std::string> benches = {
        "620.omnetpp_s", "520.omnetpp_r", "631.deepsjeng_s"};

    bench::ReportSink sink(
        argv[0], "Strategy accuracy vs reduction factor "
                 "(weighted replays vs whole run)");
    sink.schema({
        {"Strategy", "strategy"},
        {"Benchmark", "benchmark"},
        {"Regions", "regions"},
        {"Reduction", "reduction_factor"},
        {"Mix err (pts)", "mix_err"},
        {"L1D err", "l1d_err"},
        {"L3 err", "l3_err"},
        {"CPI err", "cpi_err"},
    });

    // Whole-run references, computed once and shared with every
    // strategy graph through one cache handle.
    ExperimentConfig refCfg = ExperimentConfig::paperDefaults();
    ArtifactGraph ref(refCfg);
    ref.runSuite(benches, {ArtifactKind::WholeCache,
                           ArtifactKind::WholeTiming});

    for (const std::string &strat : strategyNames()) {
        ExperimentConfig cfg =
            ExperimentConfig::paperDefaults().withStrategy(strat);
        ArtifactGraph g(cfg, ref.cacheHandle());
        g.runSuite(benches, {ArtifactKind::Regions,
                             ArtifactKind::PointsCacheWarm,
                             ArtifactKind::PointsTiming});

        for (const std::string &b : benches) {
            const RegionSelection &sel = g.regions(b);
            AggregateCacheMetrics whole =
                wholeAsAggregate(ref.wholeCache(b));
            double wholeCpi = ref.wholeTiming(b).cpi();

            AggregateCacheMetrics agg =
                aggregateCache(g.pointsCacheWarm(b));
            double mixErr = 0;
            for (std::size_t c = 0; c < whole.mixFrac.size(); ++c)
                mixErr = std::max(mixErr,
                                  std::fabs(agg.mixFrac[c] -
                                            whole.mixFrac[c]));
            double l1dErr =
                relativeError(agg.l1dMissRate, whole.l1dMissRate);
            double l3Err =
                relativeError(agg.l3MissRate, whole.l3MissRate);
            double cpiErr = relativeError(
                aggregateTiming(g.pointsTiming(b)).cpi, wholeCpi);

            const BenchmarkSpec &spec = ref.spec(b);
            u64 sliceChunks = cfg.simpoint.sliceInstrs /
                              spec.chunkLen;
            double reduction = sel.reductionFactor(
                cfg.warmupChunks / sliceChunks);

            sink.row({strat, b,
                      std::to_string(sel.regions.size()),
                      {fmtX(reduction), fmt(reduction, 4)},
                      {fmtPct(mixErr), fmt(mixErr, 6)},
                      {fmtPct(l1dErr), fmt(l1dErr, 6)},
                      {fmtPct(l3Err), fmt(l3Err, 6)},
                      {fmtPct(cpiErr), fmt(cpiErr, 6)}});
        }
        if (strat != strategyNames().back())
            sink.separator();
        g.recordArtifacts(sink.manifest(), benches,
                          {ArtifactKind::Regions,
                           ArtifactKind::PointsCacheWarm,
                           ArtifactKind::PointsTiming});
    }

    refCfg.describe(sink.manifest());
    sink.finish();

    std::printf("\nExpected shape: behaviour-aware strategies "
                "(simpoint, stratified) hold their\naccuracy at "
                "high reduction; SMARTS buys accuracy with many "
                "small units and\nwarm-up; oblivious baselines "
                "drift on CPI at equal budgets.\n");
    return 0;
}
