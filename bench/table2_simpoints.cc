/**
 * @file
 * Table II: number of simulation points and 90th-percentile
 * simulation points per SPEC CPU2017 benchmark.
 *
 * Paper reference values: average 19.75 simulation points, 11.31
 * after the 90th-percentile reduction, with MaxK = 35 and 30M
 * (paper-scale) slices.
 */

#include "bench_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("SPEC CPU2017 simulation points",
                  "Table II (MaxK = 35, slice = 30M-equivalent)");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    bench::ReportSink sink(
        argv[0], "Table II - SPEC CPU2017 Simulation Points");
    sink.schema({{"Benchmark", "benchmark"},
                 {"Simulation Points", "simpoints"},
                 {"90-pct Simulation Points", "simpoints90"},
                 {"Paper SP", "paper_sp"},
                 {"Paper 90-pct", "paper_sp90"}});
    graph.config().describe(sink.manifest());

    const auto names = suiteNames();
    const std::vector<ArtifactKind> targets = {
        ArtifactKind::SimPoints};
    graph.runSuite(names, targets);
    graph.recordArtifacts(sink.manifest(), names, targets);

    double sumSp = 0.0, sumSp90 = 0.0;
    double paperSp = 0.0, paperSp90 = 0.0;
    for (const auto &e : suiteTable()) {
        const SimPointResult &r = graph.simpoints(e.name);
        std::size_t n = r.points.size();
        std::size_t n90 = r.topByWeight(0.9).size();
        sink.row({e.name, std::to_string(n), std::to_string(n90),
                  std::to_string(e.simPoints),
                  std::to_string(e.points90)});
        sumSp += static_cast<double>(n);
        sumSp90 += static_cast<double>(n90);
        paperSp += e.simPoints;
        paperSp90 += e.points90;
    }
    double n = static_cast<double>(suiteTable().size());
    sink.separator();
    sink.tableOnlyRow({"Average", fmt(sumSp / n), fmt(sumSp90 / n),
                       fmt(paperSp / n), fmt(paperSp90 / n)});
    sink.finish();

    std::printf("\nPaper: 19.75 / 11.31 average simulation points; "
                "measured: %.2f / %.2f\n", sumSp / n, sumSp90 / n);
    return 0;
}
