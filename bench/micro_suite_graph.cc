/**
 * @file
 * Suite-scheduling microbench: wall time of a bulk suite run driven
 * serially (one benchmark, one stage at a time) vs the artifact
 * graph's cross-benchmark scheduler at the configured SPLAB_THREADS.
 * Re-checks the determinism contract along the way: both drivers
 * must produce byte-identical artifacts.
 *
 * Output: paper-style table, "<binary>.csv", and a
 * "BENCH_suite_graph.json" baseline for perf tracking.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hh"
#include "support/thread_pool.hh"

namespace splab
{
namespace
{

/** Wall-time-free bytes of every target artifact of @p g. */
std::vector<u8>
resultBytes(ArtifactGraph &g, const std::vector<std::string> &benches)
{
    ByteWriter w;
    for (const std::string &b : benches) {
        ByteWriter sp;
        serializeArtifact(sp, g.simpoints(b));
        w.putVector(sp.bytes());

        const CacheRunMetrics &whole = g.wholeCache(b);
        w.put<u64>(whole.instrs);
        for (double f : whole.mixFrac)
            w.put<double>(f);
        for (const LevelCounts *lc :
             {&whole.l1i, &whole.l1d, &whole.l2, &whole.l3}) {
            w.put<u64>(lc->accesses);
            w.put<u64>(lc->misses);
        }
        w.put<u64>(whole.branches);

        for (const PointCacheMetrics &p : g.pointsCacheCold(b)) {
            w.put<double>(p.weight);
            w.put<u64>(p.m.instrs);
            for (const LevelCounts *lc :
                 {&p.m.l1i, &p.m.l1d, &p.m.l2, &p.m.l3}) {
                w.put<u64>(lc->accesses);
                w.put<u64>(lc->misses);
            }
        }
    }
    return w.bytes();
}

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace
} // namespace splab

int
main(int, char **argv)
{
    using namespace splab;

    // A reduced scale keeps the serial leg tolerable; override to
    // measure at full size.
    setenv("SPLAB_SCALE", "0.1", 0);
    const ExperimentConfig cfg = ExperimentConfig::paperDefaults();
    const auto benches = suiteNames();
    const std::vector<ArtifactKind> targets = {
        ArtifactKind::SimPoints, ArtifactKind::WholeCache,
        ArtifactKind::PointsCacheCold};
    auto disabledCache = [] {
        return std::make_shared<const ArtifactCache>(
            ArtifactCache(""));
    };

    bench::banner("Suite scheduling: serial vs artifact graph",
                  "cross-benchmark parallelism, cold artifact cache");

    // Serial driver: the pre-graph shape — every benchmark walked to
    // completion before the next one starts, one task at a time.
    ThreadPool::setGlobalThreads(1);
    ArtifactGraph serial(cfg, disabledCache());
    double serialSec = wallSeconds([&] {
        for (const std::string &b : benches) {
            serial.simpoints(b);
            serial.wholeCache(b);
            serial.pointsCacheCold(b);
        }
    });
    std::vector<u8> serialBytes = resultBytes(serial, benches);

    // Graph driver at the configured thread count.
    ThreadPool::setGlobalThreads(0);
    std::size_t threads = parallelThreads();
    ArtifactGraph graph(cfg, disabledCache());
    double graphSec =
        wallSeconds([&] { graph.runSuite(benches, targets); });
    std::vector<u8> graphBytes = resultBytes(graph, benches);

    bool identical = serialBytes == graphBytes;
    double speedup = graphSec > 0.0 ? serialSec / graphSec : 0.0;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1)
        std::printf("note: 1 hardware thread available - wall-time "
                    "speedup is bounded at 1x here;\nthe graph "
                    "driver is checked for overhead and "
                    "byte-equality only.\n\n");

    TableWriter table("Suite wall time, " +
                      std::to_string(benches.size()) +
                      " benchmarks x " +
                      std::to_string(targets.size()) + " targets");
    table.header({"driver", "threads", "wall (s)", "speedup",
                  "identical"});
    table.row({"serial", "1", fmt(serialSec, 3), fmtX(1.0, 2), "-"});
    table.row({"graph", std::to_string(threads), fmt(graphSec, 3),
               fmtX(speedup, 2), identical ? "yes" : "NO"});
    table.print();

    CsvWriter csv;
    csv.header({"driver", "threads", "wall_sec", "speedup",
                "identical"});
    csv.row({"serial", "1", fmt(serialSec, 4), "1.0", "1"});
    csv.row({"graph", std::to_string(threads), fmt(graphSec, 4),
             fmt(speedup, 3), identical ? "1" : "0"});
    bench::saveCsv(csv, argv[0]);

    const char *jsonPath = "BENCH_suite_graph.json";
    if (std::FILE *f = std::fopen(jsonPath, "w")) {
        std::fprintf(
            f,
            "{\"bench\":\"micro_suite_graph\",\"threads\":%zu,"
            "\"hw_threads\":%u,\"benchmarks\":%zu,\"targets\":%zu,"
            "\"serial_sec\":%.4f,\"graph_sec\":%.4f,"
            "\"speedup\":%.3f,\"identical\":%s}\n",
            threads, hw, benches.size(), targets.size(), serialSec,
            graphSec, speedup, identical ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", jsonPath);
    }

    if (!identical) {
        std::printf("[FAIL] graph run differs from serial run\n");
        return 1;
    }
    return 0;
}
