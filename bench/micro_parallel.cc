/**
 * @file
 * Parallel-scaling microbench: serial vs thread-pool wall time for
 * the SimPoint BIC k-sweep and the per-point regional replays, the
 * two hot paths behind the paper's ~750x simulation-time headline.
 * Also re-checks the determinism contract: the parallel run must
 * produce byte-identical results to the serial run.
 *
 * Output: paper-style table, "<binary>.csv", and one JSON summary
 * line per stage (machine-greppable for perf tracking).
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "core/runs.hh"
#include "sampling/strategies.hh"
#include "support/thread_pool.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Best-of-@p reps wall time (removes scheduler noise). */
double
bestOf(int reps, const std::function<void()> &fn)
{
    double best = wallSeconds(fn);
    for (int r = 1; r < reps; ++r) {
        double t = wallSeconds(fn);
        if (t < best)
            best = t;
    }
    return best;
}

std::vector<u8>
simpointBytes(const SimPointResult &r)
{
    ByteWriter w;
    serializeSimPoints(w, r);
    return w.bytes();
}

struct StageResult
{
    const char *stage;
    double serialSec = 0.0;
    double parallelSec = 0.0;
    bool identical = false;
};

} // namespace
} // namespace splab

int
main(int, char **argv)
{
    using namespace splab;

    std::size_t hw = 0;
    {
        ThreadPool::setGlobalThreads(0);
        hw = parallelThreads();
    }

    bench::banner(
        "Parallel scaling: BIC k-sweep and regional replays",
        "throughput headline (~650x instrs / ~750x time)");
    std::printf("threads available: %zu (SPLAB_THREADS to pin)\n\n",
                hw);

    BenchmarkSpec spec = benchmarkByName("620.omnetpp_s");
    spec.totalChunks = 6000;
    SimPointConfig cfg;
    cfg.maxK = 20;
    cfg.restarts = 3;

    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    auto bbvs = pipe.profileBbvs(spec);

    std::vector<StageResult> results;

    // Stage 1: the k = 1..maxK model-selection sweep.
    {
        StageResult r;
        r.stage = "bic-k-sweep";
        std::vector<u8> serialBytes, parallelBytes;
        SimpointStrategy strat(cfg);
        ThreadPool::setGlobalThreads(1);
        r.serialSec = bestOf(2, [&] {
            serialBytes = simpointBytes(strat.pick(bbvs));
        });
        ThreadPool::setGlobalThreads(0);
        r.parallelSec = bestOf(2, [&] {
            parallelBytes = simpointBytes(strat.pick(bbvs));
        });
        r.identical = serialBytes == parallelBytes;
        results.push_back(r);
    }

    SimPointResult sp = SimpointStrategy(cfg).pick(bbvs);

    // Stage 2: per-simulation-point cache replays (cold caches).
    {
        StageResult r;
        r.stage = "regional-replay-cache";
        std::vector<PointCacheMetrics> serialPts, parallelPts;
        ThreadPool::setGlobalThreads(1);
        r.serialSec = bestOf(2, [&] {
            serialPts =
                measurePointsCache(spec, sp, tableIConfig(), 0);
        });
        ThreadPool::setGlobalThreads(0);
        r.parallelSec = bestOf(2, [&] {
            parallelPts =
                measurePointsCache(spec, sp, tableIConfig(), 0);
        });
        r.identical = serialPts.size() == parallelPts.size();
        for (std::size_t i = 0; r.identical && i < serialPts.size();
             ++i)
            r.identical =
                serialPts[i].m.instrs == parallelPts[i].m.instrs &&
                serialPts[i].m.l3.misses ==
                    parallelPts[i].m.l3.misses;
        results.push_back(r);
    }

    // Stage 3: per-point timing replays (cold core).
    {
        StageResult r;
        r.stage = "regional-replay-timing";
        std::vector<PointTimingMetrics> serialPts, parallelPts;
        ThreadPool::setGlobalThreads(1);
        r.serialSec = bestOf(2, [&] {
            serialPts =
                measurePointsTiming(spec, sp, tableIIIMachine(), 0);
        });
        ThreadPool::setGlobalThreads(0);
        r.parallelSec = bestOf(2, [&] {
            parallelPts =
                measurePointsTiming(spec, sp, tableIIIMachine(), 0);
        });
        r.identical = serialPts.size() == parallelPts.size();
        for (std::size_t i = 0; r.identical && i < serialPts.size();
             ++i)
            r.identical =
                serialPts[i].m.cycles == parallelPts[i].m.cycles;
        results.push_back(r);
    }
    ThreadPool::setGlobalThreads(0);

    TableWriter table("Serial vs parallel wall time (" +
                      std::to_string(hw) + " threads)");
    table.header({"stage", "serial (s)", "parallel (s)", "speedup",
                  "identical"});
    CsvWriter csv;
    csv.header({"stage", "threads", "serial_sec", "parallel_sec",
                "speedup", "identical"});
    for (const auto &r : results) {
        double speedup =
            r.parallelSec > 0.0 ? r.serialSec / r.parallelSec : 0.0;
        table.row({r.stage, fmt(r.serialSec, 3),
                   fmt(r.parallelSec, 3), fmtX(speedup, 2),
                   r.identical ? "yes" : "NO"});
        csv.row({r.stage, std::to_string(hw), fmt(r.serialSec, 4),
                 fmt(r.parallelSec, 4), fmt(speedup, 3),
                 r.identical ? "1" : "0"});
        std::printf("{\"bench\":\"micro_parallel\",\"stage\":\"%s\","
                    "\"threads\":%zu,\"serial_sec\":%.4f,"
                    "\"parallel_sec\":%.4f,\"speedup\":%.3f,"
                    "\"identical\":%s}\n",
                    r.stage, hw, r.serialSec, r.parallelSec, speedup,
                    r.identical ? "true" : "false");
    }
    std::printf("\n");
    table.print();
    bench::saveCsv(csv, argv[0]);

    for (const auto &r : results)
        if (!r.identical) {
            std::printf("[FAIL] %s: parallel result differs from "
                        "serial\n",
                        r.stage);
            return 1;
        }
    return 0;
}
