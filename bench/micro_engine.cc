/**
 * @file
 * Engine microbench: the fused single-pass whole-run measurement
 * (measureWholeFused: allcache + ldstmix + branchprofile + timing +
 * BBV in one traversal) against the legacy three-pass pipeline,
 * batched event delivery (one onBatch per chunk) against per-block
 * fan-out, and the chunk-aggregate counting kernels against their
 * per-block equivalents.
 *
 * The legacy baseline is a faithful replica of the pre-optimization
 * stack carried inside this bench: per-access tag-shift
 * recomputation, separate tag/valid arrays probed with a branchy
 * scan, element-wise LRU/FIFO shifting, and one virtual onBlock per
 * (block, tool).  It doubles as an independent reference: every
 * comparison asserts byte-equality of the deterministic results and
 * the bench exits nonzero on any mismatch.  Wall times go to the
 * paper-style tables, "<binary>.csv" and a "BENCH_engine.json"
 * baseline for perf tracking.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>

#include "bench_util.hh"
#include "core/runs.hh"
#include "isa/accumulate.hh"
#include "pin/engine.hh"
#include "support/env.hh"
#include "support/thread_pool.hh"
#include "pin/tools/allcache.hh"
#include "pin/tools/bbv_tool.hh"
#include "pin/tools/branch_profile.hh"
#include "pin/tools/inscount.hh"
#include "pin/tools/ldstmix.hh"
#include "support/serialize.hh"
#include "timing/interval_core.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

// ===================================================================
// Legacy reference stack: the cache model and event delivery exactly
// as they stood before the fused/batched engine.  Kept verbatim
// (slow tag math and all) — this is the measured baseline, and the
// optimized stack must reproduce its results bit-for-bit.
// ===================================================================

u32
legacyLog2(u64 v)
{
    u32 n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/** The seed SetAssocCache: tag shift recomputed per access, separate
 *  validity array, element-wise replacement shifting. */
class LegacyCache
{
  public:
    explicit LegacyCache(const CacheParams &params)
        : cacheParams(params), ways(params.ways)
    {
        u64 sets = params.numSets();
        setMask = sets - 1;
        lineShift = legacyLog2(params.lineBytes);
        tags.assign(sets * ways, 0);
        valid.assign(sets * ways, 0);
    }

    bool
    access(Addr addr, bool isWrite)
    {
        u64 line = addr >> lineShift;
        u64 set = line & setMask;
        u64 tag = line >> legacyLog2(setMask + 1);

        u64 *t = &tags[set * ways];
        u8 *v = &valid[set * ways];

        bool hit = false;
        u32 pos = 0;
        for (u32 i = 0; i < ways; ++i) {
            if (v[i] && t[i] == tag) {
                hit = true;
                pos = i;
                break;
            }
        }

        if (hit) {
            if (cacheParams.replacement == ReplacementPolicy::LRU) {
                for (u32 i = pos; i > 0; --i) {
                    t[i] = t[i - 1];
                    v[i] = v[i - 1];
                }
                t[0] = tag;
                v[0] = 1;
            }
        } else {
            for (u32 i = ways - 1; i > 0; --i) {
                t[i] = t[i - 1];
                v[i] = v[i - 1];
            }
            t[0] = tag;
            v[0] = 1;
        }

        ++stats.accesses;
        if (isWrite) {
            ++stats.writeAccesses;
            if (!hit)
                ++stats.writeMisses;
        } else {
            ++stats.readAccesses;
            if (!hit)
                ++stats.readMisses;
        }
        if (!hit)
            ++stats.misses;
        return hit;
    }

    CacheStats stats;

  private:
    CacheParams cacheParams;
    u64 setMask;
    u32 lineShift;
    u32 ways;
    std::vector<u64> tags;
    std::vector<u8> valid;
};

/** The seed hierarchy walk: L1 -> L2 -> L3 -> memory. */
struct LegacyHierarchy
{
    LegacyCache l1i, l1d, l2, l3;

    explicit LegacyHierarchy(const HierarchyConfig &cfg)
        : l1i(cfg.l1i), l1d(cfg.l1d), l2(cfg.l2), l3(cfg.l3)
    {
    }

    HitLevel
    accessData(Addr addr, bool isWrite)
    {
        if (l1d.access(addr, isWrite))
            return HitLevel::L1;
        if (l2.access(addr, isWrite))
            return HitLevel::L2;
        if (l3.access(addr, isWrite))
            return HitLevel::L3;
        return HitLevel::Memory;
    }

    HitLevel
    accessInstr(Addr pc)
    {
        if (l1i.access(pc, false))
            return HitLevel::L1;
        if (l2.access(pc, false))
            return HitLevel::L2;
        if (l3.access(pc, false))
            return HitLevel::L3;
        return HitLevel::Memory;
    }
};

/** The seed allcache tool over the legacy hierarchy. */
class LegacyAllCacheTool : public PinTool
{
  public:
    explicit LegacyAllCacheTool(const HierarchyConfig &config)
        : caches(config)
    {
    }

    const char *name() const override { return "legacy-allcache"; }
    bool wantsMemory() const override { return true; }

    void
    onBlock(const BlockRecord &rec, const MemAccess *accs,
            std::size_t nAccs, const BranchRecord *) override
    {
        caches.accessInstr(rec.pc);
        for (std::size_t i = 0; i < nAccs; ++i)
            caches.accessData(accs[i].addr, accs[i].isWrite);
    }

    LegacyHierarchy caches;
};

/** The seed interval core over the legacy hierarchy.  Arithmetic is
 *  copied operation-for-operation from IntervalCoreTool so cycle
 *  counts compare bit-identically. */
class LegacyIntervalCoreTool : public PinTool
{
  public:
    explicit LegacyIntervalCoreTool(const MachineConfig &config)
        : cfg(config), caches(config.caches),
          predictor(config.predictorHistoryBits),
          sinceMemMiss(config.robEntries)
    {
    }

    const char *name() const override { return "legacy-core"; }
    bool wantsMemory() const override { return true; }

    void
    onBlock(const BlockRecord &rec, const MemAccess *accs,
            std::size_t nAccs, const BranchRecord *br) override
    {
        double cycles = static_cast<double>(rec.instrs) /
                        static_cast<double>(cfg.dispatchWidth);

        HitLevel fetch = caches.accessInstr(rec.pc);
        if (fetch != HitLevel::L1)
            cycles += exposedLatency(fetch) * 0.5;

        sinceMemMiss += rec.instrs;
        for (std::size_t i = 0; i < nAccs; ++i) {
            HitLevel level =
                caches.accessData(accs[i].addr, accs[i].isWrite);
            double scale = accs[i].isWrite ? 0.3 : 1.0;
            cycles += exposedLatency(level) * scale;
        }

        if (br) {
            bool correct = predictor.update(br->pc, br->taken);
            ++timing.branches;
            if (!correct) {
                ++timing.mispredicts;
                cycles += cfg.branchMispredictPenalty;
            }
        }

        timing.instrs += rec.instrs;
        timing.cycles += cycles;
    }

    TimingStats timing;

  private:
    double
    exposedLatency(HitLevel level)
    {
        switch (level) {
          case HitLevel::L1:
            return 0.0;
          case HitLevel::L2:
            ++timing.l2Hits;
            return (cfg.l2LatencyCycles - cfg.l1LatencyCycles) * 0.35;
          case HitLevel::L3:
            ++timing.l3Hits;
            return (cfg.l3LatencyCycles - cfg.l2LatencyCycles) * 0.55;
          case HitLevel::Memory: {
            ++timing.memAccesses;
            double exposed =
                static_cast<double>(cfg.memLatencyCycles);
            if (sinceMemMiss < cfg.robEntries)
                exposed *= 0.25;
            sinceMemMiss = 0;
            return exposed * 0.8;
          }
        }
        return 0.0;
    }

    MachineConfig cfg;
    LegacyHierarchy caches;
    TournamentPredictor predictor;
    ICount sinceMemMiss;
};

/** Forces per-block delivery: the default onBatch unpacks the chunk
 *  and this sink forwards each block through Engine::onBlock — the
 *  exact pre-batching dispatch path. */
struct PerBlockFanout : EventSink
{
    Engine *engine = nullptr;

    void
    onBlock(const BlockRecord &rec, const MemAccess *accs,
            std::size_t nAccs, const BranchRecord *br) override
    {
        engine->onBlock(rec, accs, nAccs, br);
    }
};

/** Run the whole workload with per-block fan-out to @p tools,
 *  preserving Engine::run's start/end hooks. */
ICount
runPerBlock(SyntheticWorkload &wl, std::vector<PinTool *> tools,
            bool genAddresses)
{
    Engine engine;
    for (PinTool *t : tools)
        engine.attach(t);
    PerBlockFanout fanout;
    fanout.engine = &engine;
    for (PinTool *t : tools)
        t->onRunStart(wl);
    wl.run(0, wl.totalChunks(), fanout, genAddresses);
    for (PinTool *t : tools)
        t->onRunEnd();
    return engine.instructionsExecuted();
}

// ===================================================================
// Result serialization for the equality checks
// ===================================================================

/** Deterministic bytes of cache metrics (wallSeconds excluded). */
std::vector<u8>
cacheBytesNoWall(const CacheRunMetrics &m)
{
    ByteWriter w;
    w.put<u64>(m.instrs);
    for (double f : m.mixFrac)
        w.put<double>(f);
    for (const LevelCounts *lc : {&m.l1i, &m.l1d, &m.l2, &m.l3}) {
        w.put<u64>(lc->accesses);
        w.put<u64>(lc->misses);
    }
    w.put<u64>(m.branches);
    return w.bytes();
}

/** Deterministic bytes of timing metrics (wallSeconds excluded). */
std::vector<u8>
timingBytesNoWall(const TimingRunMetrics &m)
{
    ByteWriter w;
    w.put<u64>(m.instrs);
    w.put<double>(m.cycles);
    w.put<u64>(m.branches);
    w.put<u64>(m.mispredicts);
    w.put<u64>(m.l2Hits);
    w.put<u64>(m.l3Hits);
    w.put<u64>(m.memAccesses);
    return w.bytes();
}

CacheRunMetrics
harvestLegacyCache(const LegacyAllCacheTool &cache,
                   const LdStMixTool &mix,
                   const BranchProfileTool &branches, ICount instrs)
{
    CacheRunMetrics m;
    m.instrs = instrs;
    m.mixFrac = mix.mix().fractions();
    auto fill = [](LevelCounts &dst, const CacheStats &src) {
        dst.accesses = src.accesses;
        dst.misses = src.misses;
    };
    fill(m.l1i, cache.caches.l1i.stats);
    fill(m.l1d, cache.caches.l1d.stats);
    fill(m.l2, cache.caches.l2.stats);
    fill(m.l3, cache.caches.l3.stats);
    m.branches = branches.branchCount();
    return m;
}

TimingRunMetrics
harvestLegacyTiming(const LegacyIntervalCoreTool &core)
{
    const TimingStats &t = core.timing;
    TimingRunMetrics m;
    m.instrs = t.instrs;
    m.cycles = t.cycles;
    m.branches = t.branches;
    m.mispredicts = t.mispredicts;
    m.l2Hits = t.l2Hits;
    m.l3Hits = t.l3Hits;
    m.memAccesses = t.memAccesses;
    return m;
}

bool
bbvsEqual(const std::vector<FrequencyVector> &a,
          const std::vector<FrequencyVector> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].entries.size() != b[s].entries.size())
            return false;
        for (std::size_t i = 0; i < a[s].entries.size(); ++i)
            if (a[s].entries[i].block != b[s].entries[i].block ||
                a[s].entries[i].weight != b[s].entries[i].weight)
                return false;
    }
    return true;
}

/** Deterministic bytes of the counting-tool set used by the kernels
 *  section (no cache or timing state involved). */
std::vector<u8>
lightToolBytes(const LdStMixTool &mix, const InsCountTool &ins,
               const BranchProfileTool &branches, const BbvTool &bbv)
{
    ByteWriter w;
    for (double f : mix.mix().fractions())
        w.put<double>(f);
    w.put<u64>(mix.fpInstructions());
    w.put<u64>(ins.instructions());
    w.put<u64>(ins.blockCount());
    w.put<u64>(ins.branchCount());
    w.put<u64>(branches.branchCount());
    w.put<u64>(branches.takenCount());
    w.put<u64>(branches.dataDependentCount());
    for (const FrequencyVector &fv : bbv.vectors())
        w.putVector(fv.entries);
    return w.bytes();
}

/** Deterministic bytes of a current-stack tool set after a run. */
std::vector<u8>
toolBytes(const AllCacheTool &cache, const LdStMixTool &mix,
          const BranchProfileTool &branches,
          const IntervalCoreTool &core)
{
    ByteWriter w;
    const CacheHierarchy &h = cache.hierarchy();
    for (CacheLevel l : {CacheLevel::L1I, CacheLevel::L1D,
                         CacheLevel::L2, CacheLevel::L3}) {
        w.put<u64>(h.levelStats(l).accesses);
        w.put<u64>(h.levelStats(l).misses);
    }
    for (double f : mix.mix().fractions())
        w.put<double>(f);
    w.put<u64>(branches.branchCount());
    w.put<u64>(branches.takenCount());
    const TimingStats &t = core.stats();
    w.put<u64>(t.instrs);
    w.put<double>(t.cycles);
    w.put<u64>(t.mispredicts);
    w.put<u64>(t.l2Hits);
    w.put<u64>(t.l3Hits);
    w.put<u64>(t.memAccesses);
    return w.bytes();
}

} // namespace
} // namespace splab

int
main(int, char **argv)
{
    using namespace splab;

    // A reduced scale keeps the legacy legs tolerable; override to
    // measure at full size.
    setenv("SPLAB_SCALE", "0.1", 0);
    const ExperimentConfig cfg = ExperimentConfig::paperDefaults();
    const auto benches = suiteNames();
    bool identical = true;

    bench::banner("Engine: fused whole run + batched dispatch",
                  "one traversal vs the legacy three-pass pipeline");

    // ---- Part 1: whole-run measurement, three drivers ----
    //   legacy x3: the pre-optimization stack (per-block dispatch,
    //              seed cache model), one pass per view
    //   current x3: today's stack, still one pass per view
    //   fused: today's stack, all views in one traversal
    double legacySec = 0.0, sepSec = 0.0, fusedSec = 0.0;
    u64 totalInstrs = 0;
    CsvWriter csv;
    csv.header({"section", "bench", "legacy_sec", "current_sec",
                "fused_sec", "speedup", "identical"});
    for (const std::string &name : benches) {
        BenchmarkSpec spec = benchmarkByName(name);
        const ICount slice = cfg.simpoint.sliceInstrs;

        // Legacy pipeline: BBV profile (no addresses), allcache run,
        // timing run — three stream generations, per-block fan-out.
        BbvTool legacyBbv(slice);
        LegacyAllCacheTool legacyCache(cfg.allcache);
        LdStMixTool legacyMix;
        BranchProfileTool legacyBranches;
        LegacyIntervalCoreTool legacyCore(cfg.machine);
        ICount legacyInstrs = 0;
        double leg = wallSeconds([&] {
            SyntheticWorkload wb(spec);
            runPerBlock(wb, {&legacyBbv}, false);
            SyntheticWorkload wc(spec);
            legacyInstrs = runPerBlock(
                wc, {&legacyCache, &legacyMix, &legacyBranches},
                true);
            SyntheticWorkload wt(spec);
            runPerBlock(wt, {&legacyCore}, true);
        });

        // Current stack, still three separate passes.
        CacheRunMetrics cacheOnly;
        TimingRunMetrics timingOnly;
        std::vector<FrequencyVector> bbvsOnly;
        double sep = wallSeconds([&] {
            SyntheticWorkload wb(spec);
            BbvTool bbv(slice);
            Engine e;
            e.attach(&bbv);
            e.runWhole(wb);
            bbvsOnly = bbv.vectors();
            cacheOnly = measureWholeCache(spec, cfg.allcache);
            timingOnly = measureWholeTiming(spec, cfg.machine);
        });

        // Fused: everything from one traversal.
        FusedWholeResult fused;
        double fsd = wallSeconds([&] {
            fused = measureWholeFused(spec, cfg.allcache,
                                      cfg.machine, slice);
        });

        std::vector<u8> fusedCacheB = cacheBytesNoWall(fused.cache);
        std::vector<u8> fusedTimingB =
            timingBytesNoWall(fused.timing);
        bool same =
            fusedCacheB == cacheBytesNoWall(harvestLegacyCache(
                               legacyCache, legacyMix,
                               legacyBranches, legacyInstrs)) &&
            fusedCacheB == cacheBytesNoWall(cacheOnly) &&
            fusedTimingB == timingBytesNoWall(
                                harvestLegacyTiming(legacyCore)) &&
            fusedTimingB == timingBytesNoWall(timingOnly) &&
            bbvsEqual(fused.bbvs, legacyBbv.vectors()) &&
            bbvsEqual(fused.bbvs, bbvsOnly);
        if (!same)
            std::printf("[FAIL] fused != legacy/current on %s\n",
                        name.c_str());
        identical = identical && same;
        legacySec += leg;
        sepSec += sep;
        fusedSec += fsd;
        totalInstrs += fused.cache.instrs;
        csv.row({"whole_run", name, fmt(leg, 4), fmt(sep, 4),
                 fmt(fsd, 4), fmt(fsd > 0.0 ? leg / fsd : 0.0, 3),
                 same ? "1" : "0"});
    }
    double fusedSpeedup =
        fusedSec > 0.0 ? legacySec / fusedSec : 0.0;
    double fusedVsCurrent =
        fusedSec > 0.0 ? sepSec / fusedSec : 0.0;

    auto rate = [&](double sec) {
        return fmt(sec > 0.0 ? totalInstrs / sec / 1e6 : 0.0, 1);
    };
    TableWriter fusedTable(
        "Whole-run measurement, " + std::to_string(benches.size()) +
        " benchmarks (BBV + cache + timing views)");
    fusedTable.header(
        {"driver", "wall (s)", "Minstr/s", "speedup", "identical"});
    fusedTable.row({"legacy x3 (per-block)", fmt(legacySec, 3),
                    rate(legacySec), fmtX(1.0, 2), "-"});
    fusedTable.row({"current x3", fmt(sepSec, 3), rate(sepSec),
                    fmtX(sepSec > 0.0 ? legacySec / sepSec : 0.0, 2),
                    "yes"});
    fusedTable.row({"fused", fmt(fusedSec, 3), rate(fusedSec),
                    fmtX(fusedSpeedup, 2),
                    identical ? "yes" : "NO"});
    fusedTable.print();

    // ---- Part 2: batched delivery vs per-block fan-out ----
    // Same current-stack fused tool set, same stream; only the
    // delivery grain differs.  A few benchmarks are enough - the
    // dispatch cost is workload-independent.
    const std::vector<std::string> dispatchBenches(
        benches.begin(),
        benches.begin() + std::min<std::size_t>(3, benches.size()));
    double blockSec = 0.0, batchSec = 0.0;
    bool dispatchSame = true;
    for (const std::string &name : dispatchBenches) {
        BenchmarkSpec spec = benchmarkByName(name);

        SyntheticWorkload blockWl(spec);
        AllCacheTool blockCache(cfg.allcache);
        LdStMixTool blockMix;
        BranchProfileTool blockBranches;
        IntervalCoreTool blockCore(cfg.machine);
        double bs = wallSeconds([&] {
            runPerBlock(blockWl,
                        {&blockCache, &blockMix, &blockBranches,
                         &blockCore},
                        true);
        });

        SyntheticWorkload batchWl(spec);
        AllCacheTool batchCache(cfg.allcache);
        LdStMixTool batchMix;
        BranchProfileTool batchBranches;
        IntervalCoreTool batchCore(cfg.machine);
        Engine batchEngine;
        batchEngine.attach(&batchCache);
        batchEngine.attach(&batchMix);
        batchEngine.attach(&batchBranches);
        batchEngine.attach(&batchCore);
        double ts =
            wallSeconds([&] { batchEngine.runWhole(batchWl); });

        bool same = toolBytes(blockCache, blockMix, blockBranches,
                              blockCore) ==
                    toolBytes(batchCache, batchMix, batchBranches,
                              batchCore);
        if (!same)
            std::printf("[FAIL] batched != per-block on %s\n",
                        name.c_str());
        dispatchSame = dispatchSame && same;
        blockSec += bs;
        batchSec += ts;
        csv.row({"dispatch", name, fmt(bs, 4), "", fmt(ts, 4),
                 fmt(ts > 0.0 ? bs / ts : 0.0, 3),
                 same ? "1" : "0"});
    }
    identical = identical && dispatchSame;
    double dispatchSpeedup =
        batchSec > 0.0 ? blockSec / batchSec : 0.0;

    TableWriter dispatchTable(
        "Event delivery, " +
        std::to_string(dispatchBenches.size()) +
        " benchmarks (fused tool stack)");
    dispatchTable.header(
        {"dispatch", "wall (s)", "speedup", "identical"});
    dispatchTable.row(
        {"per-block", fmt(blockSec, 3), fmtX(1.0, 2), "-"});
    dispatchTable.row({"batched", fmt(batchSec, 3),
                       fmtX(dispatchSpeedup, 2),
                       dispatchSame ? "yes" : "NO"});
    dispatchTable.print();

    // ---- Part 3: chunk-aggregate kernels vs per-block delivery ----
    // Counting tools only (ldstmix + inscount + branchprofile + bbv),
    // no address generation: with the per-chunk aggregates these
    // consume O(1) (or O(touched blocks)) per chunk on the batch
    // path, so this section isolates the aggregate-kernel win from
    // cache-model time.
    const std::vector<std::string> kernelBenches(
        benches.begin(),
        benches.begin() + std::min<std::size_t>(3, benches.size()));
    double kernelBlockSec = 0.0, kernelBatchSec = 0.0;
    bool kernelsSame = true;
    for (const std::string &name : kernelBenches) {
        BenchmarkSpec spec = benchmarkByName(name);
        const ICount slice = cfg.simpoint.sliceInstrs;

        SyntheticWorkload blockWl(spec);
        LdStMixTool blockMix;
        InsCountTool blockIns;
        BranchProfileTool blockBranches;
        BbvTool blockBbv(slice);
        double bs = wallSeconds([&] {
            runPerBlock(blockWl,
                        {&blockMix, &blockIns, &blockBranches,
                         &blockBbv},
                        false);
        });

        SyntheticWorkload batchWl(spec);
        LdStMixTool batchMix;
        InsCountTool batchIns;
        BranchProfileTool batchBranches;
        BbvTool batchBbv(slice);
        Engine batchEngine;
        batchEngine.attach(&batchMix);
        batchEngine.attach(&batchIns);
        batchEngine.attach(&batchBranches);
        batchEngine.attach(&batchBbv);
        double ts =
            wallSeconds([&] { batchEngine.runWhole(batchWl); });

        bool same = lightToolBytes(blockMix, blockIns, blockBranches,
                                   blockBbv) ==
                    lightToolBytes(batchMix, batchIns, batchBranches,
                                   batchBbv);
        if (!same)
            std::printf("[FAIL] kernel aggregates != per-block on "
                        "%s\n",
                        name.c_str());
        kernelsSame = kernelsSame && same;
        kernelBlockSec += bs;
        kernelBatchSec += ts;
        csv.row({"kernels", name, fmt(bs, 4), "", fmt(ts, 4),
                 fmt(ts > 0.0 ? bs / ts : 0.0, 3),
                 same ? "1" : "0"});
    }
    identical = identical && kernelsSame;
    double kernelSpeedup =
        kernelBatchSec > 0.0 ? kernelBlockSec / kernelBatchSec : 0.0;

    TableWriter kernelTable(
        "Chunk-aggregate kernels, " +
        std::to_string(kernelBenches.size()) +
        " benchmarks (counting tools, no addresses)");
    kernelTable.header(
        {"delivery", "wall (s)", "speedup", "identical"});
    kernelTable.row(
        {"per-block", fmt(kernelBlockSec, 3), fmtX(1.0, 2), "-"});
    kernelTable.row({"chunk aggregates", fmt(kernelBatchSec, 3),
                     fmtX(kernelSpeedup, 2),
                     kernelsSame ? "yes" : "NO"});
    kernelTable.print();

    // ---- Part 4: generation pipeline off vs on ----
    // The same fused pass, serial generation vs the producer/consumer
    // pipeline (SPLAB_GEN_PIPELINE), under a multi-worker pool.  The
    // wall-clock win tracks the physical core count — on a 1-core CI
    // box both legs time the same work — but the byte-equality check
    // is the contract and holds everywhere.
    const std::size_t pipeThreads =
        std::max<std::size_t>(parallelThreads(), 4);
    ThreadPool::setGlobalThreads(pipeThreads);
    const char *pipeEnvOld = std::getenv("SPLAB_GEN_PIPELINE");
    const std::vector<std::string> pipeBenches(
        benches.begin(),
        benches.begin() + std::min<std::size_t>(3, benches.size()));
    double pipeOffSec = 0.0, pipeOnSec = 0.0;
    bool pipeSame = true;
    for (const std::string &name : pipeBenches) {
        BenchmarkSpec spec = benchmarkByName(name);
        const ICount slice = cfg.simpoint.sliceInstrs;

        FusedWholeResult off, on;
        setenv("SPLAB_GEN_PIPELINE", "0", 1);
        double os = wallSeconds([&] {
            off = measureWholeFused(spec, cfg.allcache, cfg.machine,
                                    slice);
        });
        setenv("SPLAB_GEN_PIPELINE", "1", 1);
        double ps = wallSeconds([&] {
            on = measureWholeFused(spec, cfg.allcache, cfg.machine,
                                   slice);
        });

        bool same =
            cacheBytesNoWall(off.cache) == cacheBytesNoWall(on.cache) &&
            timingBytesNoWall(off.timing) ==
                timingBytesNoWall(on.timing) &&
            bbvsEqual(off.bbvs, on.bbvs);
        if (!same)
            std::printf("[FAIL] pipelined != serial generation on "
                        "%s\n",
                        name.c_str());
        pipeSame = pipeSame && same;
        pipeOffSec += os;
        pipeOnSec += ps;
        csv.row({"genpipe", name, "", fmt(os, 4), fmt(ps, 4),
                 fmt(ps > 0.0 ? os / ps : 0.0, 3),
                 same ? "1" : "0"});
    }
    if (pipeEnvOld)
        setenv("SPLAB_GEN_PIPELINE", pipeEnvOld, 1);
    else
        unsetenv("SPLAB_GEN_PIPELINE");
    ThreadPool::setGlobalThreads(0);
    identical = identical && pipeSame;
    double pipeSpeedup = pipeOnSec > 0.0 ? pipeOffSec / pipeOnSec : 0.0;

    TableWriter pipeTable(
        "Generation pipeline, " + std::to_string(pipeBenches.size()) +
        " benchmarks (fused pass, " + std::to_string(pipeThreads) +
        " threads)");
    pipeTable.header(
        {"generation", "wall (s)", "speedup", "identical"});
    pipeTable.row(
        {"serial", fmt(pipeOffSec, 3), fmtX(1.0, 2), "-"});
    pipeTable.row({"pipelined", fmt(pipeOnSec, 3),
                   fmtX(pipeSpeedup, 2), pipeSame ? "yes" : "NO"});
    pipeTable.print();

    // ---- Part 5: SIMD vs scalar accumulate kernels ----
    // The finalize-pass reductions in isolation, on block arrays
    // shaped like generated chunks; equality is part of the bench
    // contract just like every other section.
    const std::size_t simdBlocks = 1 << 18;
    std::vector<BlockRecord> simdRecs;
    std::vector<u8> simdValid, simdTaken, simdDataDep;
    {
        std::mt19937_64 rng(2017);
        simdRecs.reserve(simdBlocks);
        for (std::size_t i = 0; i < simdBlocks; ++i) {
            BlockRecord r;
            r.bb = static_cast<u32>(rng() % 4096);
            r.pc = rng();
            r.instrs = 1 + static_cast<u32>(rng() % 40);
            for (std::size_t m = 0; m < r.mix.count.size(); ++m)
                r.mix.count[m] = rng() % 17;
            r.fpInstrs = static_cast<u32>(rng() % 9);
            bool hasBr = (rng() & 1) != 0;
            r.endsInBranch = hasBr;
            simdRecs.push_back(r);
            simdValid.push_back(hasBr ? 1 : 0);
            simdTaken.push_back(hasBr && (rng() & 1) ? 1 : 0);
            simdDataDep.push_back(hasBr && (rng() & 1) ? 1 : 0);
        }
    }
    const int simdReps = 40;
    BatchAggregates scalarAgg, simdAgg;
    u64 scalarSink = 0, simdSink = 0;
    double scalarSec = wallSeconds([&] {
        for (int r = 0; r < simdReps; ++r) {
            scalarAgg = accumulateScalar(
                simdRecs.data(), simdRecs.size(), simdValid.data(),
                simdTaken.data(), simdDataDep.data());
            scalarSink ^= scalarAgg.instrs + r;
        }
    });
    double simdSec = wallSeconds([&] {
        for (int r = 0; r < simdReps; ++r) {
            simdAgg = accumulateSimd(
                simdRecs.data(), simdRecs.size(), simdValid.data(),
                simdTaken.data(), simdDataDep.data());
            simdSink ^= simdAgg.instrs + r;
        }
    });
    bool simdSame =
        scalarAgg == simdAgg && scalarSink == simdSink;
    if (!simdSame)
        std::printf("[FAIL] SIMD accumulate != scalar reference\n");
    identical = identical && simdSame;
    double simdSpeedup = simdSec > 0.0 ? scalarSec / simdSec : 0.0;
    csv.row({"simd", "accumulate", "", fmt(scalarSec, 4),
             fmt(simdSec, 4), fmt(simdSpeedup, 3),
             simdSame ? "1" : "0"});

    TableWriter simdTable(
        "Accumulate kernels, " + std::to_string(simdBlocks) +
        " blocks x " + std::to_string(simdReps) + " reps (" +
        (simdAccumulateCompiled() ? "SSE2" : "scalar-only build") +
        ")");
    simdTable.header(
        {"kernel", "wall (s)", "speedup", "identical"});
    simdTable.row(
        {"scalar", fmt(scalarSec, 3), fmtX(1.0, 2), "-"});
    simdTable.row({"simd", fmt(simdSec, 3), fmtX(simdSpeedup, 2),
                   simdSame ? "yes" : "NO"});
    simdTable.print();

    // ---- Part 6: single consumer vs per-tool lanes ----
    // The pipelined fused pass with one consumer delivering to all
    // five tools serially (SPLAB_TOOL_LANES=0) vs one consumer lane
    // per tool (=1).  The pool is sized so every tool gets its own
    // lane with producers to spare.  As with Part 4, the wall win
    // tracks physical cores; byte-equality is the contract.
    const std::size_t laneThreads =
        std::max<std::size_t>(parallelThreads(), 8);
    ThreadPool::setGlobalThreads(laneThreads);
    const char *pipeEnvOld6 = std::getenv("SPLAB_GEN_PIPELINE");
    const char *laneEnvOld = std::getenv("SPLAB_TOOL_LANES");
    setenv("SPLAB_GEN_PIPELINE", "1", 1);
    const std::vector<std::string> laneBenches(
        benches.begin(),
        benches.begin() + std::min<std::size_t>(3, benches.size()));
    double laneOffSec = 0.0, laneOnSec = 0.0;
    bool laneSame = true;
    for (const std::string &name : laneBenches) {
        BenchmarkSpec spec = benchmarkByName(name);
        const ICount slice = cfg.simpoint.sliceInstrs;

        FusedWholeResult off, on;
        setenv("SPLAB_TOOL_LANES", "0", 1);
        double os = wallSeconds([&] {
            off = measureWholeFused(spec, cfg.allcache, cfg.machine,
                                    slice);
        });
        setenv("SPLAB_TOOL_LANES", "1", 1);
        double ls = wallSeconds([&] {
            on = measureWholeFused(spec, cfg.allcache, cfg.machine,
                                   slice);
        });

        bool same =
            cacheBytesNoWall(off.cache) == cacheBytesNoWall(on.cache) &&
            timingBytesNoWall(off.timing) ==
                timingBytesNoWall(on.timing) &&
            bbvsEqual(off.bbvs, on.bbvs);
        if (!same)
            std::printf("[FAIL] tool lanes != single consumer on "
                        "%s\n",
                        name.c_str());
        laneSame = laneSame && same;
        laneOffSec += os;
        laneOnSec += ls;
        csv.row({"toollanes", name, "", fmt(os, 4), fmt(ls, 4),
                 fmt(ls > 0.0 ? os / ls : 0.0, 3),
                 same ? "1" : "0"});
    }
    if (pipeEnvOld6)
        setenv("SPLAB_GEN_PIPELINE", pipeEnvOld6, 1);
    else
        unsetenv("SPLAB_GEN_PIPELINE");
    if (laneEnvOld)
        setenv("SPLAB_TOOL_LANES", laneEnvOld, 1);
    else
        unsetenv("SPLAB_TOOL_LANES");
    ThreadPool::setGlobalThreads(0);
    identical = identical && laneSame;
    double laneSpeedup = laneOnSec > 0.0 ? laneOffSec / laneOnSec : 0.0;

    TableWriter laneTable(
        "Tool lanes, " + std::to_string(laneBenches.size()) +
        " benchmarks (pipelined fused pass, " +
        std::to_string(laneThreads) + " threads)");
    laneTable.header(
        {"consumer", "wall (s)", "speedup", "identical"});
    laneTable.row(
        {"single", fmt(laneOffSec, 3), fmtX(1.0, 2), "-"});
    laneTable.row({"per-tool lanes", fmt(laneOnSec, 3),
                   fmtX(laneSpeedup, 2), laneSame ? "yes" : "NO"});
    laneTable.print();

    bench::saveCsv(csv, argv[0]);

    // Default into the CWD (the build tree under ctest); set
    // SPLAB_BENCH_OUT to publish straight to the repo root so the
    // committed baseline tracks the perf trajectory.
    const std::string jsonPath =
        envString("SPLAB_BENCH_OUT", "BENCH_engine.json");
    if (std::FILE *f = std::fopen(jsonPath.c_str(), "w")) {
        std::fprintf(
            f,
            "{\"bench\":\"micro_engine\",\"benchmarks\":%zu,"
            "\"total_minstrs\":%.1f,"
            "\"legacy_sec\":%.4f,\"current_sec\":%.4f,"
            "\"fused_sec\":%.4f,"
            "\"fused_speedup\":%.3f,\"fused_vs_current\":%.3f,"
            "\"dispatch_benchmarks\":%zu,"
            "\"per_block_sec\":%.4f,\"batched_sec\":%.4f,"
            "\"dispatch_speedup\":%.3f,"
            "\"kernels_benchmarks\":%zu,"
            "\"kernels_per_block_sec\":%.4f,"
            "\"kernels_batch_sec\":%.4f,"
            "\"kernels_speedup\":%.3f,"
            "\"genpipe_benchmarks\":%zu,"
            "\"genpipe_threads\":%zu,"
            "\"genpipe_off_sec\":%.4f,\"genpipe_on_sec\":%.4f,"
            "\"genpipe_speedup\":%.3f,"
            "\"lanes_benchmarks\":%zu,"
            "\"lanes_threads\":%zu,"
            "\"lanes_off_sec\":%.4f,\"lanes_on_sec\":%.4f,"
            "\"lanes_speedup\":%.3f,"
            "\"simd_compiled\":%s,"
            "\"simd_scalar_sec\":%.4f,\"simd_sec\":%.4f,"
            "\"simd_speedup\":%.3f,\"identical\":%s}\n",
            benches.size(), totalInstrs / 1e6, legacySec, sepSec,
            fusedSec, fusedSpeedup, fusedVsCurrent,
            dispatchBenches.size(), blockSec, batchSec,
            dispatchSpeedup, kernelBenches.size(), kernelBlockSec,
            kernelBatchSec, kernelSpeedup, pipeBenches.size(),
            pipeThreads, pipeOffSec, pipeOnSec, pipeSpeedup,
            laneBenches.size(), laneThreads, laneOffSec, laneOnSec,
            laneSpeedup,
            simdAccumulateCompiled() ? "true" : "false", scalarSec,
            simdSec, simdSpeedup, identical ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    if (!identical) {
        std::printf("[FAIL] fused/batched results differ from the "
                    "legacy pipeline\n");
        return 1;
    }
    return 0;
}
